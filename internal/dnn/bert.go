package dnn

import "fmt"

// buildBert constructs BERT-base (12 layers, hidden 768, 12 heads, FFN
// 3072). Costs are per-sample polynomials in the sequence length: dense,
// norm, and elementwise operators scale linearly with tokens; attention
// score/context operators scale quadratically (the paper's seqlen feature,
// Figure 8, exists exactly because of this input sensitivity).
func buildBert(name string) *Model {
	const (
		layers = 12
		hidden = 768
		heads  = 12
		ffn    = 3072
		vocab  = 30522
	)
	g := &graph{}

	// Token + position embedding lookup, then layernorm.
	embedParams := float64((vocab+512)*hidden) * bytesPerElem
	cur := g.add(Op{
		Kind:       Embedding,
		Name:       name + "/embed",
		FLOPs:      Cost{C1: float64(hidden)},
		Bytes:      Cost{C1: 2 * float64(hidden) * bytesPerElem},
		OutElems:   Cost{C1: float64(hidden)},
		ParamBytes: embedParams,
	})
	cur = g.add(seqLayerNorm(name+"/embed/ln", hidden), cur)

	for l := 0; l < layers; l++ {
		prefix := fmt.Sprintf("%s/l%d", name, l)

		qkv := g.add(seqDense(prefix+"/qkv", hidden, 3*hidden), cur)
		scores := g.add(attnScores(prefix+"/scores", hidden, heads), qkv)
		sm := g.add(attnSoftmax(prefix+"/softmax", heads), scores)
		ctx := g.add(attnContext(prefix+"/context", hidden, heads), sm, qkv)
		proj := g.add(seqDense(prefix+"/proj", hidden, hidden), ctx)
		add1 := g.add(seqAdd(prefix+"/add1", hidden), proj, cur)
		ln1 := g.add(seqLayerNorm(prefix+"/ln1", hidden), add1)

		f1 := g.add(seqDense(prefix+"/ffn1", hidden, ffn), ln1)
		gl := g.add(seqGELU(prefix+"/gelu", ffn), f1)
		f2 := g.add(seqDense(prefix+"/ffn2", ffn, hidden), gl)
		add2 := g.add(seqAdd(prefix+"/add2", hidden), f2, ln1)
		cur = g.add(seqLayerNorm(prefix+"/ln2", hidden), add2)
	}

	// Pooler + classifier head on the [CLS] token.
	pool := g.add(denseOp(name+"/pooler", hidden, hidden), cur)
	g.add(denseOp(name+"/classifier", hidden, 2), pool)

	m := g.build(name)
	m.InputBytesPerSample = Cost{C1: 8} // token + segment ids
	m.MinBatch, m.MaxBatch = 4, 32
	m.SeqLens = []int{8, 16, 32, 64}
	return m
}

// seqDense is a per-token fully connected layer in→out.
func seqDense(name string, inF, outF int) Op {
	weights := float64(inF*outF) * bytesPerElem
	return Op{
		Kind:       Dense,
		Name:       name,
		FLOPs:      Cost{C1: 2 * float64(inF) * float64(outF)},
		Bytes:      Cost{C0: weights / weightReuse, C1: float64(inF+outF) * bytesPerElem},
		OutElems:   Cost{C1: float64(outF)},
		ParamBytes: weights,
	}
}

// attnScores is Q·Kᵀ: per sample 2·seq²·hidden FLOPs, seq²·heads outputs.
func attnScores(name string, hidden, heads int) Op {
	return Op{
		Kind:     MatMul,
		Name:     name,
		FLOPs:    Cost{C2: 2 * float64(hidden)},
		Bytes:    Cost{C1: 2 * float64(hidden) * bytesPerElem, C2: float64(heads) * bytesPerElem},
		OutElems: Cost{C2: float64(heads)},
	}
}

// attnSoftmax normalizes the seq²·heads score matrix.
func attnSoftmax(name string, heads int) Op {
	return Op{
		Kind:     Softmax,
		Name:     name,
		FLOPs:    Cost{C2: 5 * float64(heads)},
		Bytes:    Cost{C2: 2 * float64(heads) * bytesPerElem},
		OutElems: Cost{C2: float64(heads)},
	}
}

// attnContext is scores·V: per sample 2·seq²·hidden FLOPs, seq·hidden outputs.
func attnContext(name string, hidden, heads int) Op {
	return Op{
		Kind:     MatMul,
		Name:     name,
		FLOPs:    Cost{C2: 2 * float64(hidden)},
		Bytes:    Cost{C1: 2 * float64(hidden) * bytesPerElem, C2: float64(heads) * bytesPerElem},
		OutElems: Cost{C1: float64(hidden)},
	}
}

// seqLayerNorm normalizes each token's hidden vector.
func seqLayerNorm(name string, width int) Op {
	return Op{
		Kind:       LayerNorm,
		Name:       name,
		FLOPs:      Cost{C1: 5 * float64(width)},
		Bytes:      Cost{C1: 2 * float64(width) * bytesPerElem},
		OutElems:   Cost{C1: float64(width)},
		ParamBytes: float64(2*width) * bytesPerElem,
	}
}

// seqAdd is a per-token residual addition.
func seqAdd(name string, width int) Op {
	return Op{
		Kind:     Add,
		Name:     name,
		FLOPs:    Cost{C1: float64(width)},
		Bytes:    Cost{C1: 3 * float64(width) * bytesPerElem},
		OutElems: Cost{C1: float64(width)},
	}
}

// seqGELU is a per-token GELU activation.
func seqGELU(name string, width int) Op {
	return Op{
		Kind:     GELU,
		Name:     name,
		FLOPs:    Cost{C1: 8 * float64(width)},
		Bytes:    Cost{C1: 2 * float64(width) * bytesPerElem},
		OutElems: Cost{C1: float64(width)},
	}
}
