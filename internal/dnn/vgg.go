package dnn

import "fmt"

// buildVGG constructs VGG-16 ({2,2,3,3,3} convs per stage) or VGG-19
// ({2,2,4,4,4}) for 224×224 inputs. VGG's huge 3×3 convolutions saturate the
// device, so co-locating two VGGs degenerates to time-sharing — the regime
// where the paper reports Abacus gains nothing (§7.3).
func buildVGG(name string, convsPerStage [5]int) *Model {
	channels := [5]int{64, 128, 256, 512, 512}
	g := &graph{}
	t := tensor{C: 3, H: 224, W: 224}
	cur := -1
	for stage, n := range convsPerStage {
		for i := 0; i < n; i++ {
			prefix := fmt.Sprintf("%s/s%d/c%d", name, stage+1, i)
			conv, out := convOp(prefix+"/conv", t, channels[stage], 3, 3, 1)
			var c int
			if cur < 0 {
				c = g.add(conv)
			} else {
				c = g.add(conv, cur)
			}
			cur = g.add(reluOp(prefix+"/relu", out), c)
			t = out
		}
		pool, out := poolOp(MaxPool, fmt.Sprintf("%s/s%d/pool", name, stage+1), t, 2, 2)
		cur = g.add(pool, cur)
		t = out
	}

	flat := t.C * t.H * t.W // 512·7·7 = 25088
	f1 := g.add(denseOp(name+"/fc1", flat, 4096), cur)
	r1 := g.add(reluOp(name+"/fc1/relu", tensor{C: 4096, H: 1, W: 1}), f1)
	f2 := g.add(denseOp(name+"/fc2", 4096, 4096), r1)
	r2 := g.add(reluOp(name+"/fc2/relu", tensor{C: 4096, H: 1, W: 1}), f2)
	g.add(denseOp(name+"/fc3", 4096, 1000), r2)

	return finishCV(g.build(name), 224)
}
