package dnn

import "fmt"

// buildInceptionV3 constructs Inception-V3 for 299×299 inputs following the
// torchvision block structure (stem, 3×A, B, 4×C, D, 2×E). Inception's many
// narrow branch convolutions leave the device under-occupied — the model the
// paper singles out as benefiting most from deterministic overlap.
func buildInceptionV3(name string) *Model {
	g := &graph{}
	t := tensor{C: 3, H: 299, W: 299}

	// Stem.
	cur, t := convBNReLU(g, name+"/stem/c1", -1, t, 32, 3, 3, 2) // 150
	cur, t = convBNReLU(g, name+"/stem/c2", cur, t, 32, 3, 3, 1)
	cur, t = convBNReLU(g, name+"/stem/c3", cur, t, 64, 3, 3, 1)
	p1, t := poolOp(MaxPool, name+"/stem/pool1", t, 3, 2) // 75
	cur = g.add(p1, cur)
	cur, t = convBNReLU(g, name+"/stem/c4", cur, t, 80, 1, 1, 1)
	cur, t = convBNReLU(g, name+"/stem/c5", cur, t, 192, 3, 3, 1)
	p2, t := poolOp(MaxPool, name+"/stem/pool2", t, 3, 2) // 38
	cur = g.add(p2, cur)

	// 3× Inception-A at 38×38.
	poolProj := [3]int{32, 64, 64}
	for i := 0; i < 3; i++ {
		cur, t = inceptionA(g, fmt.Sprintf("%s/a%d", name, i), cur, t, poolProj[i])
	}
	// Reduction-B to 19×19.
	cur, t = inceptionB(g, name+"/b0", cur, t)
	// 4× Inception-C at 19×19.
	c7 := [4]int{128, 160, 160, 192}
	for i := 0; i < 4; i++ {
		cur, t = inceptionC(g, fmt.Sprintf("%s/c%d", name, i), cur, t, c7[i])
	}
	// Reduction-D to 10×10.
	cur, t = inceptionD(g, name+"/d0", cur, t)
	// 2× Inception-E at 10×10.
	for i := 0; i < 2; i++ {
		cur, t = inceptionE(g, fmt.Sprintf("%s/e%d", name, i), cur, t)
	}

	gp, t := globalPoolOp(name+"/avgpool", t)
	p := g.add(gp, cur)
	g.add(denseOp(name+"/fc", t.C, 1000), p)

	return finishCV(g.build(name), 299)
}

// branchPool appends avgpool → 1×1 conv-bn-relu and returns (index, shape).
func branchPool(g *graph, prefix string, dep int, in tensor, outC int) (int, tensor) {
	pool, pt := poolOp(AvgPool, prefix+"/pool", in, 3, 1)
	p := g.add(pool, dep)
	return convBNReLU(g, prefix+"/proj", p, pt, outC, 1, 1, 1)
}

func inceptionA(g *graph, prefix string, dep int, in tensor, poolC int) (int, tensor) {
	b1, t1 := convBNReLU(g, prefix+"/b1", dep, in, 64, 1, 1, 1)
	b2a, t2 := convBNReLU(g, prefix+"/b2a", dep, in, 48, 1, 1, 1)
	b2, t2 := convBNReLU(g, prefix+"/b2b", b2a, t2, 64, 5, 5, 1)
	b3a, t3 := convBNReLU(g, prefix+"/b3a", dep, in, 64, 1, 1, 1)
	b3b, t3 := convBNReLU(g, prefix+"/b3b", b3a, t3, 96, 3, 3, 1)
	b3, t3 := convBNReLU(g, prefix+"/b3c", b3b, t3, 96, 3, 3, 1)
	b4, t4 := branchPool(g, prefix+"/b4", dep, in, poolC)
	cat, out := concatOp(prefix+"/concat", t1, t2, t3, t4)
	return g.add(cat, b1, b2, b3, b4), out
}

func inceptionB(g *graph, prefix string, dep int, in tensor) (int, tensor) {
	b1, t1 := convBNReLU(g, prefix+"/b1", dep, in, 384, 3, 3, 2)
	b2a, t2 := convBNReLU(g, prefix+"/b2a", dep, in, 64, 1, 1, 1)
	b2b, t2 := convBNReLU(g, prefix+"/b2b", b2a, t2, 96, 3, 3, 1)
	b2, t2 := convBNReLU(g, prefix+"/b2c", b2b, t2, 96, 3, 3, 2)
	pool, t3 := poolOp(MaxPool, prefix+"/pool", in, 3, 2)
	b3 := g.add(pool, dep)
	cat, out := concatOp(prefix+"/concat", t1, t2, t3)
	return g.add(cat, b1, b2, b3), out
}

func inceptionC(g *graph, prefix string, dep int, in tensor, c7 int) (int, tensor) {
	b1, t1 := convBNReLU(g, prefix+"/b1", dep, in, 192, 1, 1, 1)
	b2a, t2 := convBNReLU(g, prefix+"/b2a", dep, in, c7, 1, 1, 1)
	b2b, t2 := convBNReLU(g, prefix+"/b2b", b2a, t2, c7, 1, 7, 1)
	b2, t2 := convBNReLU(g, prefix+"/b2c", b2b, t2, 192, 7, 1, 1)
	b3a, t3 := convBNReLU(g, prefix+"/b3a", dep, in, c7, 1, 1, 1)
	b3b, t3 := convBNReLU(g, prefix+"/b3b", b3a, t3, c7, 7, 1, 1)
	b3c, t3 := convBNReLU(g, prefix+"/b3c", b3b, t3, c7, 1, 7, 1)
	b3d, t3 := convBNReLU(g, prefix+"/b3d", b3c, t3, c7, 7, 1, 1)
	b3, t3 := convBNReLU(g, prefix+"/b3e", b3d, t3, 192, 1, 7, 1)
	b4, t4 := branchPool(g, prefix+"/b4", dep, in, 192)
	cat, out := concatOp(prefix+"/concat", t1, t2, t3, t4)
	return g.add(cat, b1, b2, b3, b4), out
}

func inceptionD(g *graph, prefix string, dep int, in tensor) (int, tensor) {
	b1a, t1 := convBNReLU(g, prefix+"/b1a", dep, in, 192, 1, 1, 1)
	b1, t1 := convBNReLU(g, prefix+"/b1b", b1a, t1, 320, 3, 3, 2)
	b2a, t2 := convBNReLU(g, prefix+"/b2a", dep, in, 192, 1, 1, 1)
	b2b, t2 := convBNReLU(g, prefix+"/b2b", b2a, t2, 192, 1, 7, 1)
	b2c, t2 := convBNReLU(g, prefix+"/b2c", b2b, t2, 192, 7, 1, 1)
	b2, t2 := convBNReLU(g, prefix+"/b2d", b2c, t2, 192, 3, 3, 2)
	pool, t3 := poolOp(MaxPool, prefix+"/pool", in, 3, 2)
	b3 := g.add(pool, dep)
	cat, out := concatOp(prefix+"/concat", t1, t2, t3)
	return g.add(cat, b1, b2, b3), out
}

func inceptionE(g *graph, prefix string, dep int, in tensor) (int, tensor) {
	b1, t1 := convBNReLU(g, prefix+"/b1", dep, in, 320, 1, 1, 1)
	b2a, t2 := convBNReLU(g, prefix+"/b2a", dep, in, 384, 1, 1, 1)
	b2x, t2x := convBNReLU(g, prefix+"/b2x", b2a, t2, 384, 1, 3, 1)
	b2y, t2y := convBNReLU(g, prefix+"/b2y", b2a, t2, 384, 3, 1, 1)
	b3a, t3 := convBNReLU(g, prefix+"/b3a", dep, in, 448, 1, 1, 1)
	b3b, t3 := convBNReLU(g, prefix+"/b3b", b3a, t3, 384, 3, 3, 1)
	b3x, t3x := convBNReLU(g, prefix+"/b3x", b3b, t3, 384, 1, 3, 1)
	b3y, t3y := convBNReLU(g, prefix+"/b3y", b3b, t3, 384, 3, 1, 1)
	b4, t4 := branchPool(g, prefix+"/b4", dep, in, 192)
	cat, out := concatOp(prefix+"/concat", t1, t2x, t2y, t3x, t3y, t4)
	return g.add(cat, b1, b2x, b2y, b3x, b3y, b4), out
}
