package dnn

import (
	"fmt"
	"sync"

	"abacus/internal/gpusim"
	"abacus/internal/sim"
)

// ModelID identifies one of the seven serving models from Table 1 of the
// paper. The order matches the paper's co-location tables.
type ModelID int

// The paper's model zoo.
const (
	ResNet50 ModelID = iota
	ResNet101
	ResNet152
	InceptionV3
	VGG16
	VGG19
	Bert
	NumModels // count of models in the zoo
)

var modelNames = [...]string{
	ResNet50:    "Res50",
	ResNet101:   "Res101",
	ResNet152:   "Res152",
	InceptionV3: "IncepV3",
	VGG16:       "VGG16",
	VGG19:       "VGG19",
	Bert:        "Bert",
}

// String returns the paper's short model name (e.g. "Res152").
func (id ModelID) String() string {
	if id < 0 || id >= NumModels {
		return fmt.Sprintf("ModelID(%d)", int(id))
	}
	return modelNames[id]
}

// ModelIDByName resolves a short name (case-sensitive, as printed by
// String) back to its ModelID.
func ModelIDByName(name string) (ModelID, error) {
	for id, n := range modelNames {
		if n == name {
			return ModelID(id), nil
		}
	}
	return 0, fmt.Errorf("dnn: unknown model %q", name)
}

var (
	zooOnce sync.Once
	zoo     [NumModels]*Model
)

func buildZoo() {
	zoo[ResNet50] = buildResNet("Res50", [4]int{3, 4, 6, 3})
	zoo[ResNet101] = buildResNet("Res101", [4]int{3, 4, 23, 3})
	zoo[ResNet152] = buildResNet("Res152", [4]int{3, 8, 36, 3})
	zoo[InceptionV3] = buildInceptionV3("IncepV3")
	zoo[VGG16] = buildVGG("VGG16", [5]int{2, 2, 3, 3, 3})
	zoo[VGG19] = buildVGG("VGG19", [5]int{2, 2, 4, 4, 4})
	zoo[Bert] = buildBert("Bert")
	for i := range zoo {
		zoo[i].ID = i
	}
}

// Get returns the (shared, immutable) model for id. Models are built once
// and must not be mutated by callers.
func Get(id ModelID) *Model {
	zooOnce.Do(buildZoo)
	if id < 0 || id >= NumModels {
		panic(fmt.Sprintf("dnn: model id %d out of range", int(id)))
	}
	return zoo[id]
}

// All returns the full zoo in ModelID order.
func All() []*Model {
	zooOnce.Do(buildZoo)
	out := make([]*Model, NumModels)
	copy(out, zoo[:])
	return out
}

// Batches returns the batch sizes served per Table 1.
func Batches() []int { return []int{4, 8, 16, 32} }

// SoloLatency measures the end-to-end execution latency of one query
// (operators [0, NumOps), exclusive device) on a private simulation. It is
// the paper's solo-run latency used to derive QoS targets.
func SoloLatency(m *Model, in Input, p gpusim.Profile) float64 {
	return SpanLatency(m, in, p, 0, m.NumOps())
}

// SpanLatency measures the exclusive-device latency of operators
// [start, end) of one query, including per-launch gaps.
func SpanLatency(m *Model, in Input, p gpusim.Profile, start, end int) float64 {
	eng := sim.NewEngine()
	dev := gpusim.New(eng, p)
	var finish sim.Time
	dev.RunChain(Kernels(m, in, p, start, end), func() { finish = eng.Now() })
	eng.Run()
	return finish
}
