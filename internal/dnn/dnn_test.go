package dnn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"abacus/internal/gpusim"
	"abacus/internal/sim"
)

func TestZooContents(t *testing.T) {
	models := All()
	if len(models) != int(NumModels) {
		t.Fatalf("zoo has %d models, want %d", len(models), NumModels)
	}
	wantNames := []string{"Res50", "Res101", "Res152", "IncepV3", "VGG16", "VGG19", "Bert"}
	for i, m := range models {
		if m.Name != wantNames[i] {
			t.Errorf("model %d name = %q, want %q", i, m.Name, wantNames[i])
		}
		if m.ID != i {
			t.Errorf("model %q ID = %d, want %d", m.Name, m.ID, i)
		}
		if ModelID(i).String() != wantNames[i] {
			t.Errorf("ModelID(%d).String() = %q, want %q", i, ModelID(i).String(), wantNames[i])
		}
	}
}

func TestModelIDByName(t *testing.T) {
	for id := ModelID(0); id < NumModels; id++ {
		got, err := ModelIDByName(id.String())
		if err != nil || got != id {
			t.Errorf("ModelIDByName(%q) = %v, %v; want %v", id.String(), got, err, id)
		}
	}
	if _, err := ModelIDByName("NoSuchNet"); err == nil {
		t.Error("ModelIDByName of unknown name should error")
	}
}

func TestGetReturnsSharedInstance(t *testing.T) {
	if Get(ResNet50) != Get(ResNet50) {
		t.Error("Get should return the cached model")
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	Get(NumModels)
}

func TestTopologyInvariant(t *testing.T) {
	for _, m := range All() {
		if err := m.ValidateTopology(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestOperatorCounts(t *testing.T) {
	// Pin the zoo's structural sizes so accidental builder edits surface.
	// The paper quotes "241 operators for Resnet101" under PyTorch's op
	// accounting; our graphs keep bn/relu as separate operators, so counts
	// are larger but ordering must match: VGG tiny, ResNets large.
	counts := map[ModelID]int{}
	for id := ModelID(0); id < NumModels; id++ {
		counts[id] = Get(id).NumOps()
	}
	if !(counts[ResNet50] < counts[ResNet101] && counts[ResNet101] < counts[ResNet152]) {
		t.Errorf("ResNet op counts not increasing: %v", counts)
	}
	if counts[VGG16] >= counts[ResNet50] {
		t.Errorf("VGG16 (%d ops) should have far fewer operators than Res50 (%d)", counts[VGG16], counts[ResNet50])
	}
	if counts[VGG19] <= counts[VGG16] {
		t.Errorf("VGG19 (%d) should exceed VGG16 (%d)", counts[VGG19], counts[VGG16])
	}
	if counts[ResNet101] < 200 {
		t.Errorf("Res101 has %d ops; expected hundreds (paper: 241 fused)", counts[ResNet101])
	}
}

func TestModelInputDomains(t *testing.T) {
	for _, m := range All() {
		if m.MinBatch != 4 || m.MaxBatch != 32 {
			t.Errorf("%s batch range [%d,%d], want [4,32] per Table 1", m.Name, m.MinBatch, m.MaxBatch)
		}
		if m.Name == "Bert" {
			if !m.IsSequence() {
				t.Error("Bert must be a sequence model")
			}
			want := []int{8, 16, 32, 64}
			for i, s := range want {
				if m.SeqLens[i] != s {
					t.Errorf("Bert SeqLens = %v, want %v", m.SeqLens, want)
					break
				}
			}
		} else if m.IsSequence() {
			t.Errorf("%s should not be a sequence model", m.Name)
		}
	}
}

func TestMaxMinInput(t *testing.T) {
	bert := Get(Bert)
	if in := bert.MaxInput(); in.Batch != 32 || in.SeqLen != 64 {
		t.Errorf("Bert MaxInput = %+v, want {32 64}", in)
	}
	if in := bert.MinInput(); in.Batch != 4 || in.SeqLen != 8 {
		t.Errorf("Bert MinInput = %+v, want {4 8}", in)
	}
	res := Get(ResNet50)
	if in := res.MaxInput(); in.Batch != 32 || in.SeqLen != 0 {
		t.Errorf("Res50 MaxInput = %+v, want {32 0}", in)
	}
}

func TestCostEval(t *testing.T) {
	c := Cost{C0: 1, C1: 2, C2: 3}
	got := c.Eval(Input{Batch: 2, SeqLen: 4})
	want := 2.0 * (1 + 2*4 + 3*16)
	if got != want {
		t.Errorf("Eval = %v, want %v", got, want)
	}
	if !(Cost{}).Zero() {
		t.Error("zero Cost should report Zero")
	}
	if c.Zero() {
		t.Error("non-zero Cost should not report Zero")
	}
}

func TestFLOPsScaleWithBatch(t *testing.T) {
	m := Get(ResNet50)
	f4 := m.FLOPs(Input{Batch: 4})
	f32 := m.FLOPs(Input{Batch: 32})
	if f32 != 8*f4 {
		t.Errorf("FLOPs not linear in batch: f32=%v f4=%v", f32, f4)
	}
}

func TestBertFLOPsGrowSuperlinearlyInSeq(t *testing.T) {
	m := Get(Bert)
	f8 := m.FLOPs(Input{Batch: 8, SeqLen: 8})
	f64 := m.FLOPs(Input{Batch: 8, SeqLen: 64})
	if f64 < 8*f8 {
		t.Errorf("Bert FLOPs should grow at least linearly with seq (attention quadratic): f8=%v f64=%v", f8, f64)
	}
}

func TestResNetFLOPsMatchLiterature(t *testing.T) {
	// Literature (fvcore-style MAC counting ×2): Res50 ≈ 8.2 GFLOPs/sample,
	// Res152 ≈ 23 GFLOPs/sample at 224². Allow ±25% for bn/elementwise.
	cases := []struct {
		id   ModelID
		want float64
	}{
		{ResNet50, 8.2e9},
		{ResNet101, 15.7e9},
		{ResNet152, 23.1e9},
		{VGG16, 31.0e9},
		{VGG19, 39.3e9},
	}
	for _, c := range cases {
		got := Get(c.id).FLOPs(Input{Batch: 1})
		if got < c.want*0.75 || got > c.want*1.25 {
			t.Errorf("%s FLOPs/sample = %.2fG, want ≈ %.2fG ±25%%", c.id, got/1e9, c.want/1e9)
		}
	}
}

func TestKernelForValidSpecs(t *testing.T) {
	p := gpusim.A100Profile()
	for _, m := range All() {
		for _, in := range []Input{m.MinInput(), m.MaxInput()} {
			for i := range m.Ops {
				spec := KernelFor(&m.Ops[i], in, p)
				if err := spec.Validate(); err != nil {
					t.Fatalf("%s op %d (%s) input %+v: %v", m.Name, i, m.Ops[i].Name, in, err)
				}
			}
		}
	}
}

func TestKernelWorkMonotoneInBatch(t *testing.T) {
	p := gpusim.A100Profile()
	m := Get(ResNet152)
	for i := range m.Ops {
		w4 := KernelFor(&m.Ops[i], Input{Batch: 4}, p).Work
		w32 := KernelFor(&m.Ops[i], Input{Batch: 32}, p).Work
		if w32 < w4 {
			t.Errorf("op %s: work decreased with batch (%v -> %v)", m.Ops[i].Name, w4, w32)
		}
	}
}

func TestVGGSaturatesResNetDoesNot(t *testing.T) {
	p := gpusim.A100Profile()
	smWeightedFrac := func(id ModelID, in Input) float64 {
		m := Get(id)
		var wsum, tsum float64
		for i := range m.Ops {
			k := KernelFor(&m.Ops[i], in, p)
			wsum += k.SMFrac * k.Work
			tsum += k.Work
		}
		return wsum / tsum
	}
	vgg := smWeightedFrac(VGG16, Input{Batch: 32})
	res := smWeightedFrac(ResNet152, Input{Batch: 16})
	if vgg < 0.8 {
		t.Errorf("VGG16 bs32 work-weighted SMFrac = %.3f, want near saturation (>0.8)", vgg)
	}
	if res > 0.8 {
		t.Errorf("Res152 bs16 work-weighted SMFrac = %.3f, want clearly below VGG (%.3f)", res, vgg)
	}
	if res >= vgg {
		t.Errorf("expected Res152 occupancy (%.3f) < VGG16 occupancy (%.3f)", res, vgg)
	}
}

func TestKernelsSpan(t *testing.T) {
	p := gpusim.A100Profile()
	m := Get(ResNet50)
	in := Input{Batch: 8}
	all := Kernels(m, in, p, 0, m.NumOps())
	if len(all) != m.NumOps() {
		t.Fatalf("full span has %d kernels, want %d", len(all), m.NumOps())
	}
	span := Kernels(m, in, p, 10, 20)
	if len(span) != 10 {
		t.Fatalf("span [10,20) has %d kernels", len(span))
	}
	for i, k := range span {
		if k != all[10+i] {
			t.Errorf("span kernel %d differs from full list", i)
		}
	}
	if len(Kernels(m, in, p, 5, 5)) != 0 {
		t.Error("empty span should produce no kernels")
	}
}

func TestKernelsInvalidSpanPanics(t *testing.T) {
	m := Get(ResNet50)
	p := gpusim.A100Profile()
	for _, span := range [][2]int{{-1, 3}, {3, 1}, {0, m.NumOps() + 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("span %v did not panic", span)
				}
			}()
			Kernels(m, Input{Batch: 4}, p, span[0], span[1])
		}()
	}
}

func TestSpanWorkAdditive(t *testing.T) {
	p := gpusim.A100Profile()
	m := Get(InceptionV3)
	in := Input{Batch: 16}
	whole := SpanWork(m, in, p, 0, m.NumOps())
	split := SpanWork(m, in, p, 0, 100) + SpanWork(m, in, p, 100, m.NumOps())
	if diff := whole - split; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("SpanWork not additive: whole=%v split=%v", whole, split)
	}
}

func TestSpanWorkMatchesSpanLatency(t *testing.T) {
	// Exclusive chain latency equals the summed solo works + gaps, because a
	// solo chain runs every kernel at rate 1.
	p := gpusim.A100Profile()
	m := Get(VGG16)
	in := Input{Batch: 8}
	w := SpanWork(m, in, p, 0, m.NumOps())
	l := SpanLatency(m, in, p, 0, m.NumOps())
	if diff := w - l; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("SpanWork %v != SpanLatency %v", w, l)
	}
}

func TestTransferTime(t *testing.T) {
	p := gpusim.A100Profile()
	m := Get(ResNet50)
	tt := TransferTime(m, Input{Batch: 32}, p)
	// 32 × 3·224²·4 bytes ≈ 18.4 MB → ~0.8 ms at 22 GB/s.
	if tt < 0.2 || tt > 3 {
		t.Errorf("Res50 bs32 transfer time %v ms out of plausible range", tt)
	}
	if tt2 := TransferTime(m, Input{Batch: 4}, p); tt2 >= tt {
		t.Errorf("transfer time should grow with batch: bs4=%v bs32=%v", tt2, tt)
	}
}

func TestSwapTimeScalesWithParams(t *testing.T) {
	p := gpusim.A100Profile()
	small := SwapTime(Get(ResNet50), p)
	big := SwapTime(Get(VGG19), p)
	if small <= 0 || big <= small {
		t.Errorf("swap times: Res50=%v VGG19=%v; want 0 < Res50 < VGG19", small, big)
	}
}

func TestOpKindString(t *testing.T) {
	if Conv2D.String() != "conv2d" || GELU.String() != "gelu" {
		t.Errorf("OpKind names wrong: %v %v", Conv2D, GELU)
	}
	if !strings.Contains(OpKind(99).String(), "99") {
		t.Errorf("out-of-range OpKind String = %q", OpKind(99).String())
	}
	for k := OpKind(0); k < numOpKinds; k++ {
		if k.String() == "" {
			t.Errorf("OpKind %d has empty name", k)
		}
	}
}

func TestMatMulLike(t *testing.T) {
	for _, k := range []OpKind{Conv2D, Dense, MatMul} {
		if !k.MatMulLike() {
			t.Errorf("%v should be MatMulLike", k)
		}
	}
	for _, k := range []OpKind{ReLU, Add, Softmax, MaxPool, Embedding} {
		if k.MatMulLike() {
			t.Errorf("%v should not be MatMulLike", k)
		}
	}
}

func TestGraphBuilderRejectsForwardDeps(t *testing.T) {
	g := &graph{}
	g.add(reluOp("a", tensor{1, 1, 1}))
	defer func() {
		if recover() == nil {
			t.Error("forward dependency did not panic")
		}
	}()
	g.add(reluOp("b", tensor{1, 1, 1}), 5)
}

func TestConcatShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	concatOp("bad", tensor{3, 8, 8}, tensor{3, 4, 4})
}

// Property: SpanLatency is monotone — extending a span never shortens it —
// and sub-additive relative to SpanWork (chains never run faster than solo
// work allows).
func TestSpanLatencyProperties(t *testing.T) {
	p := gpusim.A100Profile()
	f := func(modelRaw, startRaw, lenRaw uint8, batchIdx uint8) bool {
		m := Get(ModelID(int(modelRaw) % int(NumModels)))
		in := Input{Batch: Batches()[int(batchIdx)%4]}
		if m.IsSequence() {
			in.SeqLen = m.SeqLens[int(batchIdx)%len(m.SeqLens)]
		}
		start := int(startRaw) % m.NumOps()
		length := int(lenRaw)%(m.NumOps()-start) + 1
		inner := SpanLatency(m, in, p, start, start+length)
		var outerEnd int
		if start+length+1 <= m.NumOps() {
			outerEnd = start + length + 1
		} else {
			outerEnd = m.NumOps()
		}
		outer := SpanLatency(m, in, p, start, outerEnd)
		return outer >= inner-1e-9 && inner > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestParamCountsMatchLiterature(t *testing.T) {
	// Literature parameter counts (fp32 bytes): Res50 ≈ 25.6M, Res101 ≈
	// 44.5M, Res152 ≈ 60.2M, VGG16 ≈ 138M, VGG19 ≈ 144M, IncepV3 ≈ 23.8M,
	// BERT-base ≈ 110M. Allow ±15% for head/embedding simplifications.
	cases := []struct {
		id     ModelID
		params float64
	}{
		{ResNet50, 25.6e6},
		{ResNet101, 44.5e6},
		{ResNet152, 60.2e6},
		{InceptionV3, 23.8e6},
		{VGG16, 138e6},
		{VGG19, 144e6},
		{Bert, 110e6},
	}
	for _, c := range cases {
		got := Get(c.id).ParamBytes() / 4
		if got < c.params*0.85 || got > c.params*1.15 {
			t.Errorf("%v: %.1fM params, literature ≈ %.1fM (±15%%)", c.id, got/1e6, c.params/1e6)
		}
	}
}

func TestSpatialDimsFlowCorrectly(t *testing.T) {
	// The ResNet stem halves twice (224→112→56) and each later stage halves
	// once more; the final global pool must see 7×7. Verify indirectly: the
	// last conv's per-sample output elements are 2048·7·7.
	m := Get(ResNet50)
	var lastConv *Op
	for i := range m.Ops {
		if m.Ops[i].Kind == Conv2D {
			lastConv = &m.Ops[i]
		}
	}
	if lastConv == nil {
		t.Fatal("no conv found")
	}
	want := 2048.0 * 7 * 7
	if got := lastConv.OutElems.Eval(Input{Batch: 1}); got != want {
		t.Errorf("last conv out elems = %v, want %v", got, want)
	}
}

func TestInceptionUses299Input(t *testing.T) {
	m := Get(InceptionV3)
	want := 3.0 * 299 * 299 * 4
	if got := m.InputBytes(Input{Batch: 1}); got != want {
		t.Errorf("IncepV3 input bytes = %v, want %v (299x299)", got, want)
	}
}

func TestBertOpCountScalesWithLayers(t *testing.T) {
	// 12 encoder layers × 12 ops + embedding block (2) + head (2).
	m := Get(Bert)
	if got, want := m.NumOps(), 12*12+4; got != want {
		t.Errorf("Bert has %d ops, want %d", got, want)
	}
}

func TestModelsSlowerOnV100(t *testing.T) {
	a, v := gpusim.A100Profile(), gpusim.V100Profile()
	for _, id := range []ModelID{ResNet152, VGG16, Bert} {
		m := Get(id)
		in := m.MaxInput()
		la, lv := SoloLatency(m, in, a), SoloLatency(m, in, v)
		if lv <= la {
			t.Errorf("%v: V100 solo %v not slower than A100 %v", id, lv, la)
		}
	}
}

func TestProfileAndSummarize(t *testing.T) {
	p := gpusim.A100Profile()
	m := Get(ResNet50)
	in := Input{Batch: 16}
	profs := m.Profile(in, p)
	if len(profs) != m.NumOps() {
		t.Fatalf("profile has %d rows, want %d", len(profs), m.NumOps())
	}
	var flops float64
	for i, pr := range profs {
		if pr.Index != i || pr.WorkMS <= 0 {
			t.Fatalf("row %d invalid: %+v", i, pr)
		}
		flops += pr.FLOPs
	}
	if flops != m.FLOPs(in) {
		t.Errorf("profile FLOPs %v != model FLOPs %v", flops, m.FLOPs(in))
	}
	s := m.Summarize(in, p)
	if s.Ops != m.NumOps() || s.FLOPs != flops {
		t.Errorf("summary mismatch: %+v", s)
	}
	want := SpanWork(m, in, p, 0, m.NumOps())
	if diff := s.TotalMS - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("summary TotalMS %v != SpanWork %v", s.TotalMS, want)
	}
	// Convolutions dominate a ResNet's time.
	var maxKind OpKind
	var maxMS float64
	for k, ms := range s.KindMS {
		if ms > maxMS {
			maxKind, maxMS = k, ms
		}
	}
	if maxKind != Conv2D {
		t.Errorf("dominant kind %v, want conv2d", maxKind)
	}
}

func TestWriteProfileOutputs(t *testing.T) {
	p := gpusim.A100Profile()
	m := Get(VGG16)
	in := Input{Batch: 8}
	var human strings.Builder
	m.WriteProfile(&human, in, p)
	if !strings.Contains(human.String(), "VGG16/fc1") {
		t.Error("human profile missing fc1 row")
	}
	var buf strings.Builder
	if err := m.WriteProfileCSV(&buf, in, p); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != m.NumOps()+1 {
		t.Fatalf("CSV has %d lines for %d ops", len(lines), m.NumOps())
	}
}

func TestRunDFGCompletesAllOps(t *testing.T) {
	p := gpusim.A100Profile()
	for _, id := range []ModelID{ResNet50, InceptionV3, VGG16, Bert} {
		m := Get(id)
		in := m.MinInput()
		eng := sim.NewEngine()
		dev := gpusim.New(eng, p)
		done := false
		RunDFG(dev, m, in, func() { done = true })
		eng.Run()
		if !done {
			t.Errorf("%v: DFG execution did not complete", id)
		}
		if got := dev.Launched(); got != int64(m.NumOps()) {
			t.Errorf("%v: launched %d kernels, want %d", id, got, m.NumOps())
		}
	}
}

func TestDFGNeverSlowerThanChain(t *testing.T) {
	p := gpusim.A100Profile()
	for _, m := range All() {
		in := Input{Batch: 8}
		if m.IsSequence() {
			in.SeqLen = 16
		}
		chain := SoloLatency(m, in, p)
		dfg := DFGLatency(m, in, p)
		if dfg > chain+1e-6 {
			t.Errorf("%s: DFG %v slower than chain %v", m.Name, dfg, chain)
		}
	}
}

func TestDFGBranchGains(t *testing.T) {
	p := gpusim.A100Profile()
	gain := func(id ModelID) float64 {
		m := Get(id)
		in := Input{Batch: 16}
		if m.IsSequence() {
			in.SeqLen = 32
		}
		return SoloLatency(m, in, p) / DFGLatency(m, in, p)
	}
	incep := gain(InceptionV3)
	vgg := gain(VGG16)
	bert := gain(Bert)
	t.Logf("DFG speedups: IncepV3=%.3f VGG16=%.3f Bert=%.3f", incep, vgg, bert)
	if incep < 1.05 {
		t.Errorf("Inception's branches should yield >5%% DFG speedup, got %.3fx", incep)
	}
	// VGG and BERT are chains: ratio ≈ 1.
	for name, g := range map[string]float64{"VGG16": vgg, "Bert": bert} {
		if g < 0.999 || g > 1.01 {
			t.Errorf("%s is a pure chain; DFG speedup %.3fx should be ≈1", name, g)
		}
	}
}

func TestRunDFGEmptyModel(t *testing.T) {
	eng := sim.NewEngine()
	dev := gpusim.New(eng, gpusim.A100Profile())
	done := false
	RunDFG(dev, &Model{Name: "empty"}, Input{Batch: 1}, func() { done = true })
	if !done {
		t.Error("empty model should complete immediately")
	}
}
