package dnn

import "fmt"

// buildResNet constructs a torchvision-style bottleneck ResNet for 224×224
// inputs. blocks gives the number of bottleneck blocks per stage:
// {3,4,6,3} = ResNet-50, {3,4,23,3} = ResNet-101, {3,8,36,3} = ResNet-152.
func buildResNet(name string, blocks [4]int) *Model {
	g := &graph{}
	in := tensor{C: 3, H: 224, W: 224}

	// Stem: 7×7/2 conv → BN → ReLU → 3×3/2 max pool.
	r, t := convBNReLU(g, name+"/stem", -1, in, 64, 7, 7, 2)
	pool, t := poolOp(MaxPool, name+"/stem/maxpool", t, 3, 2)
	cur := g.add(pool, r)

	for stage := 0; stage < 4; stage++ {
		width := 64 << stage
		outC := width * 4
		for blk := 0; blk < blocks[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			prefix := fmt.Sprintf("%s/s%d/b%d", name, stage+1, blk)
			cur, t = bottleneck(g, prefix, cur, t, width, outC, stride)
		}
	}

	gp, t := globalPoolOp(name+"/avgpool", t)
	p := g.add(gp, cur)
	f := g.add(denseOp(name+"/fc", t.C, 1000), p)
	_ = f

	return finishCV(g.build(name), 224)
}

// bottleneck appends one bottleneck residual block (1×1 reduce, 3×3, 1×1
// expand, with a projection shortcut when the shape changes) and returns the
// final ReLU index and output shape.
func bottleneck(g *graph, prefix string, dep int, in tensor, width, outC, stride int) (int, tensor) {
	// Main path.
	r1, t1 := convBNReLU(g, prefix+"/1x1a", dep, in, width, 1, 1, 1)
	r2, t2 := convBNReLU(g, prefix+"/3x3", r1, t1, width, 3, 3, stride)
	conv3, t3 := convOp(prefix+"/1x1b/conv", t2, outC, 1, 1, 1)
	c3 := g.add(conv3, r2)
	b3 := g.add(bnOp(prefix+"/1x1b/bn", t3), c3)

	// Shortcut path.
	shortcut := dep
	if stride != 1 || in.C != outC {
		dconv, dt := convOp(prefix+"/down/conv", in, outC, 1, 1, stride)
		dc := g.add(dconv, dep)
		shortcut = g.add(bnOp(prefix+"/down/bn", dt), dc)
	}

	a := g.add(addOp(prefix+"/add", t3), b3, shortcut)
	r := g.add(reluOp(prefix+"/relu", t3), a)
	return r, t3
}
