package dnn

import (
	"math"

	"abacus/internal/gpusim"
)

// kindEfficiency returns the fraction of the device's sustained FLOP and
// byte throughput an operator kind achieves. GEMM-style kernels approach the
// compute roof; elementwise and reduction kernels are bandwidth-bound and
// incur extra inefficiency from short grids.
func kindEfficiency(k OpKind) (flopEff, memEff float64) {
	switch k {
	case Conv2D:
		return 0.50, 0.85
	case Dense, MatMul:
		return 0.60, 0.85
	case Softmax, LayerNorm, BatchNorm:
		return 0.20, 0.75
	default: // elementwise, pooling, concat, embedding
		return 0.25, 0.85
	}
}

// tileElems returns the number of output elements one thread block (tile)
// covers for the kind: GEMM kernels use 64×64 tiles, elementwise kernels
// cover wide flat ranges.
func tileElems(k OpKind) float64 {
	if k.MatMulLike() {
		return 4096
	}
	return 16384
}

// minKernelWork is the floor on a kernel's solo duration (ms): even an empty
// kernel costs a scheduling quantum on the device.
const minKernelWork = 0.002

// KernelFor maps an operator at a runtime input to the kernel the device
// executes:
//
//   - SMFrac: achievable occupancy = tiles / (NumSMs·BlocksPerSM), capped at 1.
//     Small operators (late ResNet/Inception stages, small batches) occupy a
//     fraction of the device, which is precisely where deterministic overlap
//     pays off (paper §7.3).
//   - Work: solo duration = max(compute time at the occupied SM share,
//     bandwidth time), plus the minimum kernel quantum.
//   - MemFrac: fraction of device bandwidth the kernel consumes while
//     running, which drives cross-kernel bandwidth contention.
func KernelFor(op *Op, in Input, p gpusim.Profile) gpusim.KernelSpec {
	flops := op.FLOPs.Eval(in)
	bytes := op.Bytes.Eval(in)
	elems := op.OutElems.Eval(in)

	flopEff, memEff := kindEfficiency(op.Kind)

	tiles := elems / tileElems(op.Kind)
	// A kernel reaches the device's full throughput only after several
	// waves of thread blocks; below that it is tail/latency-bound and the
	// unused share of the device is available to co-located kernels. This
	// is the paper's "small operators cannot saturate the GPU" (§7.3).
	tilesForFull := float64(p.NumSMs * p.BlocksPerSM * p.FullWaves)
	smFrac := tiles / tilesForFull
	if smFrac > 1 {
		smFrac = 1
	}
	if smFrac < 1.0/tilesForFull {
		smFrac = 1.0 / tilesForFull // at least one resident block
	}

	// Small grids lose throughput to the wave tail, but sublinearly: a
	// kernel that can only occupy smFrac of the SMs still benefits from
	// higher per-SM cache locality and clocks, so its achievable compute
	// rate follows sqrt(smFrac). The linear smFrac remains the kernel's
	// resource footprint for contention.
	computeMS := 0.0
	if flops > 0 {
		computeMS = flops / (flopEff * p.FLOPsPerMS * math.Sqrt(smFrac))
	}
	memMS := 0.0
	if bytes > 0 {
		memMS = bytes / (memEff * p.BytesPerMS)
	}
	work := math.Max(computeMS, memMS) + minKernelWork

	memFrac := 0.0
	if bytes > 0 {
		memFrac = bytes / work / p.BytesPerMS
		if memFrac > 1 {
			memFrac = 1
		}
	}

	return gpusim.KernelSpec{
		Name:    op.Name,
		Work:    work,
		SMFrac:  smFrac,
		MemFrac: memFrac,
	}
}

// Kernels maps a span [start, end) of the model's operator list to kernel
// specs for the given input. Kernels(m, in, p, 0, m.NumOps()) is the whole
// query. It panics on an invalid span.
func Kernels(m *Model, in Input, p gpusim.Profile, start, end int) []gpusim.KernelSpec {
	if start < 0 || end > len(m.Ops) || start > end {
		panic("dnn: invalid operator span")
	}
	return AppendKernels(make([]gpusim.KernelSpec, 0, end-start), m, in, p, start, end)
}

// AppendKernels appends the span's kernel specs to dst and returns the
// extended slice — the allocation-free variant of Kernels for callers that
// pool their spec buffers (the executor reuses one per group span). It
// panics on an invalid span.
func AppendKernels(dst []gpusim.KernelSpec, m *Model, in Input, p gpusim.Profile, start, end int) []gpusim.KernelSpec {
	if start < 0 || end > len(m.Ops) || start > end {
		panic("dnn: invalid operator span")
	}
	for i := start; i < end; i++ {
		dst = append(dst, KernelFor(&m.Ops[i], in, p))
	}
	return dst
}

// SpanWork returns the summed solo kernel duration of operators [start, end)
// including per-launch gaps — the exclusive-execution time of the span. The
// sequential baselines (FCFS/SJF/EDF) complete a query in exactly this time.
func SpanWork(m *Model, in Input, p gpusim.Profile, start, end int) float64 {
	var total float64
	for i := start; i < end; i++ {
		total += KernelFor(&m.Ops[i], in, p).Work + p.LaunchGap
	}
	return total
}

// TransferTime returns the host→device input transfer time of a query (the
// T_comms term of paper Equation 2).
func TransferTime(m *Model, in Input, p gpusim.Profile) float64 {
	return m.InputBytes(in) / (1 << 20) * p.TransferPerMB
}

// SwapTime returns the time to activate the model's weights on a device (the
// Clockwork baseline pays this when switching the active model).
func SwapTime(m *Model, p gpusim.Profile) float64 {
	return m.ParamBytes() / (1 << 20) * p.ModelSwapPerMB
}
