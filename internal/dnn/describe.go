package dnn

import (
	"encoding/csv"
	"fmt"
	"io"
	"text/tabwriter"

	"abacus/internal/gpusim"
)

// OpProfile is one operator's cost breakdown at a concrete input — the
// inspection artifact behind the cost model (what nvprof would report on
// the paper's testbed).
type OpProfile struct {
	Index   int
	Name    string
	Kind    OpKind
	FLOPs   float64
	Bytes   float64
	WorkMS  float64
	SMFrac  float64
	MemFrac float64
}

// Profile returns the per-operator cost breakdown of the model at the
// input.
func (m *Model) Profile(in Input, p gpusim.Profile) []OpProfile {
	out := make([]OpProfile, 0, len(m.Ops))
	for i := range m.Ops {
		op := &m.Ops[i]
		spec := KernelFor(op, in, p)
		out = append(out, OpProfile{
			Index:   i,
			Name:    op.Name,
			Kind:    op.Kind,
			FLOPs:   op.FLOPs.Eval(in),
			Bytes:   op.Bytes.Eval(in),
			WorkMS:  spec.Work,
			SMFrac:  spec.SMFrac,
			MemFrac: spec.MemFrac,
		})
	}
	return out
}

// Summary aggregates a model's profile.
type Summary struct {
	Ops        int
	FLOPs      float64
	Bytes      float64
	TotalMS    float64 // exclusive execution incl. launch gaps
	ParamBytes float64
	// KindMS breaks execution time down by operator kind.
	KindMS map[OpKind]float64
}

// Summarize aggregates the model's cost at the input.
func (m *Model) Summarize(in Input, p gpusim.Profile) Summary {
	s := Summary{Ops: m.NumOps(), ParamBytes: m.ParamBytes(), KindMS: map[OpKind]float64{}}
	for _, prof := range m.Profile(in, p) {
		s.FLOPs += prof.FLOPs
		s.Bytes += prof.Bytes
		s.TotalMS += prof.WorkMS + p.LaunchGap
		s.KindMS[prof.Kind] += prof.WorkMS + p.LaunchGap
	}
	return s
}

// WriteProfile renders the per-operator table in a human-readable layout.
func (m *Model) WriteProfile(w io.Writer, in Input, p gpusim.Profile) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "#\tname\tkind\tGFLOPs\tMB\twork(ms)\tSM\tmemBW\n")
	for _, prof := range m.Profile(in, p) {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.3f\t%.2f\t%.4f\t%.2f\t%.2f\n",
			prof.Index, prof.Name, prof.Kind,
			prof.FLOPs/1e9, prof.Bytes/(1<<20), prof.WorkMS, prof.SMFrac, prof.MemFrac)
	}
	tw.Flush()
}

// WriteProfileCSV emits the per-operator table as CSV for external tooling.
func (m *Model) WriteProfileCSV(w io.Writer, in Input, p gpusim.Profile) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "name", "kind", "flops", "bytes", "work_ms", "sm_frac", "mem_frac"}); err != nil {
		return err
	}
	for _, prof := range m.Profile(in, p) {
		row := []string{
			fmt.Sprintf("%d", prof.Index),
			prof.Name,
			prof.Kind.String(),
			fmt.Sprintf("%.0f", prof.FLOPs),
			fmt.Sprintf("%.0f", prof.Bytes),
			fmt.Sprintf("%.6f", prof.WorkMS),
			fmt.Sprintf("%.4f", prof.SMFrac),
			fmt.Sprintf("%.4f", prof.MemFrac),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
