package dnn

import "fmt"

// tensor tracks the activation shape flowing through a CV model builder.
type tensor struct {
	C, H, W int
}

func (t tensor) elems() float64 { return float64(t.C * t.H * t.W) }

// weightReuse is the effective on-chip reuse factor of weights: DRAM weight
// traffic per sample is weights/weightReuse (weights are shared across the
// batch and cached across tiles).
const weightReuse = 16

// bytesPerElem is fp32 activation storage.
const bytesPerElem = 4

// convOut computes the output spatial size with SAME-style padding.
func convOut(in, stride int) int {
	return (in + stride - 1) / stride
}

// convOp builds a Conv2D (kh×kw kernel, given stride, SAME padding) and
// returns the op plus the output tensor shape.
func convOp(name string, in tensor, outC, kh, kw, stride int) (Op, tensor) {
	out := tensor{C: outC, H: convOut(in.H, stride), W: convOut(in.W, stride)}
	weights := float64(kh*kw*in.C*outC) * bytesPerElem
	return Op{
		Kind:       Conv2D,
		Name:       name,
		FLOPs:      constCost(2 * float64(kh*kw*in.C) * out.elems()),
		Bytes:      constCost((in.elems()+out.elems())*bytesPerElem + weights/weightReuse),
		OutElems:   constCost(out.elems()),
		ParamBytes: weights,
	}, out
}

// bnOp builds an inference-mode batch normalization over t.
func bnOp(name string, t tensor) Op {
	return Op{
		Kind:       BatchNorm,
		Name:       name,
		FLOPs:      constCost(2 * t.elems()),
		Bytes:      constCost(2 * t.elems() * bytesPerElem),
		OutElems:   constCost(t.elems()),
		ParamBytes: float64(4*t.C) * bytesPerElem,
	}
}

// reluOp builds an elementwise ReLU over t.
func reluOp(name string, t tensor) Op {
	return Op{
		Kind:     ReLU,
		Name:     name,
		FLOPs:    constCost(t.elems()),
		Bytes:    constCost(2 * t.elems() * bytesPerElem),
		OutElems: constCost(t.elems()),
	}
}

// addOp builds an elementwise residual addition over t.
func addOp(name string, t tensor) Op {
	return Op{
		Kind:     Add,
		Name:     name,
		FLOPs:    constCost(t.elems()),
		Bytes:    constCost(3 * t.elems() * bytesPerElem),
		OutElems: constCost(t.elems()),
	}
}

// poolOp builds a k×k max or average pool with the given stride.
func poolOp(kind OpKind, name string, in tensor, k, stride int) (Op, tensor) {
	out := tensor{C: in.C, H: convOut(in.H, stride), W: convOut(in.W, stride)}
	return Op{
		Kind:     kind,
		Name:     name,
		FLOPs:    constCost(float64(k*k) * out.elems()),
		Bytes:    constCost((in.elems() + out.elems()) * bytesPerElem),
		OutElems: constCost(out.elems()),
	}, out
}

// globalPoolOp reduces H×W to 1×1.
func globalPoolOp(name string, in tensor) (Op, tensor) {
	out := tensor{C: in.C, H: 1, W: 1}
	return Op{
		Kind:     GlobalAvgPool,
		Name:     name,
		FLOPs:    constCost(in.elems()),
		Bytes:    constCost((in.elems() + out.elems()) * bytesPerElem),
		OutElems: constCost(out.elems()),
	}, out
}

// denseOp builds a fully connected layer in→out (per sample).
func denseOp(name string, inF, outF int) Op {
	weights := float64(inF*outF) * bytesPerElem
	return Op{
		Kind:       Dense,
		Name:       name,
		FLOPs:      constCost(2 * float64(inF) * float64(outF)),
		Bytes:      constCost(float64(inF+outF)*bytesPerElem + weights/weightReuse),
		OutElems:   constCost(float64(outF)),
		ParamBytes: weights,
	}
}

// concatOp builds a channel concatenation of the given tensors (all same
// H×W) and returns the op plus the concatenated shape.
func concatOp(name string, ts ...tensor) (Op, tensor) {
	if len(ts) == 0 {
		panic("dnn: concat of nothing")
	}
	out := tensor{C: 0, H: ts[0].H, W: ts[0].W}
	for _, t := range ts {
		if t.H != out.H || t.W != out.W {
			panic(fmt.Sprintf("dnn: concat shape mismatch %dx%d vs %dx%d", t.H, t.W, out.H, out.W))
		}
		out.C += t.C
	}
	return Op{
		Kind:     Concat,
		Name:     name,
		FLOPs:    constCost(out.elems()),
		Bytes:    constCost(2 * out.elems() * bytesPerElem),
		OutElems: constCost(out.elems()),
	}, out
}

// cvInputBytes is the transfer cost of a 3×res×res fp32 image per sample.
func cvInputBytes(res int) Cost {
	return constCost(float64(3*res*res) * bytesPerElem)
}

// finishCV stamps the batch limits and input size shared by all CV models
// in Table 1.
func finishCV(m *Model, res int) *Model {
	m.InputBytesPerSample = cvInputBytes(res)
	m.MinBatch, m.MaxBatch = 4, 32
	return m
}

// convBNReLU appends conv→bn→relu to g and returns the relu's index and the
// output shape. dep is the operator feeding the convolution; pass a negative
// dep for the model's input operator.
func convBNReLU(g *graph, prefix string, dep int, in tensor, outC, kh, kw, stride int) (int, tensor) {
	conv, out := convOp(prefix+"/conv", in, outC, kh, kw, stride)
	var c int
	if dep < 0 {
		c = g.add(conv)
	} else {
		c = g.add(conv, dep)
	}
	b := g.add(bnOp(prefix+"/bn", out), c)
	r := g.add(reluOp(prefix+"/relu", out), b)
	return r, out
}
