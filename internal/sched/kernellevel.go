package sched

import (
	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/predictor"
	"abacus/internal/sim"
)

// KernelLevel models the Prema-style kernel-granularity scheduling the
// paper rejects in §5.1 (Figure 6a): queries interleave at single-operator
// granularity with a synchronization fence between operators — no overlap —
// and every operator costs a duration prediction (the paper measures
// ~0.1 ms per kernel-level prediction, the same order as many operators).
// It exists to quantify why Abacus predicts at operator-group granularity.
type KernelLevel struct {
	eng  *sim.Engine
	exec *executor.Executor
	sink Sink
	cfg  Config

	queue       []*Query
	dispatching bool
}

// NewKernelLevel builds the kernel-granularity baseline.
func NewKernelLevel(eng *sim.Engine, exec *executor.Executor, cfg Config, sink Sink) *KernelLevel {
	cfg = cfg.withDefaults()
	if cfg.PredictCost <= 0 {
		cfg.PredictCost = 0.1
	}
	return &KernelLevel{eng: eng, exec: exec, sink: sink, cfg: cfg}
}

// Name implements Scheduler.
func (k *KernelLevel) Name() string { return "KernelLevel" }

// QueueLen implements Scheduler.
func (k *KernelLevel) QueueLen() int {
	n := len(k.queue)
	if k.exec.Busy() {
		n++
	}
	return n
}

// Enqueue implements Scheduler.
func (k *KernelLevel) Enqueue(q *Query) {
	validateQuery(q)
	k.queue = append(k.queue, q)
	k.maybeDispatch()
}

func (k *KernelLevel) maybeDispatch() {
	if k.exec.Busy() || k.dispatching || len(k.queue) == 0 {
		return
	}
	// Charge the per-kernel prediction before each operator issue; unlike
	// Abacus there is no concurrent execution window to hide it in when
	// the device idles between fences.
	k.dispatching = true
	k.eng.Schedule(k.cfg.PredictCost, func() {
		k.dispatching = false
		k.dispatchOne()
	})
}

// dispatchOne executes exactly one operator of the earliest-deadline query.
func (k *KernelLevel) dispatchOne() {
	if k.exec.Busy() {
		return
	}
	now := k.eng.Now()
	if k.cfg.Drop {
		kept := k.queue[:0]
		for _, q := range k.queue {
			if now > q.Deadline() {
				q.Dropped = true
				q.Finish = now
				k.sink(q)
				continue
			}
			kept = append(kept, q)
		}
		k.queue = kept
	}
	if len(k.queue) == 0 {
		return
	}
	best := 0
	for i := 1; i < len(k.queue); i++ {
		a, b := k.queue[i], k.queue[best]
		if a.Deadline() < b.Deadline() ||
			(a.Deadline() == b.Deadline() && a.ID < b.ID) {
			best = i
		}
	}
	q := k.queue[best]
	m := dnn.Get(q.Service.Model)
	k.exec.Execute(predictor.Group{{
		Model:   q.Service.Model,
		OpStart: q.NextOp,
		OpEnd:   q.NextOp + 1,
		Batch:   q.Input.Batch,
		SeqLen:  q.Input.SeqLen,
	}}, func() {
		q.NextOp++
		if q.NextOp == m.NumOps() {
			q.Finish = k.eng.Now()
			q.done = true
			k.queue = removeQuery(k.queue, q)
			k.sink(q)
		}
		k.maybeDispatch()
	})
}

func removeQuery(queue []*Query, q *Query) []*Query {
	for i, cand := range queue {
		if cand == q {
			return append(queue[:i], queue[i+1:]...)
		}
	}
	return queue
}
