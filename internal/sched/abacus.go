package sched

import (
	"sort"

	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/predictor"
	"abacus/internal/sim"
)

// Abacus is the paper's headroom-based query controller (§6.2) with
// multi-way search (§6.3) and pipelined scheduling. Per round it:
//
//  1. computes every active query's QoS headroom (Eq. 2, shifted by the
//     in-flight group's predicted latency per Eq. 3 when pipelining),
//  2. sorts queries by headroom and guarantees the least-headroom query by
//     placing all of its remaining operators in the candidate group
//     (dropping it if even that cannot meet the deadline),
//  3. greedily adds as many operators as possible from the remaining
//     queries, in headroom order, searching each query's maximal feasible
//     span with batched duration-model predictions,
//  4. issues the group to the segmental executor once the previous group's
//     synchronization completes.
type Abacus struct {
	eng   *sim.Engine
	exec  *executor.Executor
	model predictor.LatencyModel
	sink  Sink
	cfg   Config

	queues   map[int][]*Query // service ID → FIFO
	services []*Service
	search   SpanSearcher // reusable multi-way search scratch

	inFlight *formedGroup // issued, executing
	next     *formedGroup // formed, awaiting executor (and formation delay)
	forming  bool
	reform   bool // arrivals landed while forming; redo before issuing

	// Instrumentation.
	rounds        int64
	predictRounds int64
	drops         int64
	groupMembers  int64
	groupOps      int64
	groupsIssued  int64
}

type member struct {
	q          *Query
	start, end int
}

type formedGroup struct {
	members []member
	predLat float64
	issued  sim.Time
	ready   bool
}

func (f *formedGroup) group() predictor.Group {
	g := make(predictor.Group, 0, len(f.members))
	for _, m := range f.members {
		g = append(g, predictor.Entry{
			Model:   m.q.Service.Model,
			OpStart: m.start,
			OpEnd:   m.end,
			Batch:   m.q.Input.Batch,
			SeqLen:  m.q.Input.SeqLen,
		})
	}
	return g
}

// NewAbacus builds the controller over the executor and duration model.
func NewAbacus(eng *sim.Engine, exec *executor.Executor, model predictor.LatencyModel, cfg Config, sink Sink) *Abacus {
	if model == nil {
		panic("sched: Abacus requires a latency model")
	}
	return &Abacus{
		eng:    eng,
		exec:   exec,
		model:  model,
		sink:   sink,
		cfg:    cfg.withDefaults(),
		queues: make(map[int][]*Query),
	}
}

// Name implements Scheduler.
func (a *Abacus) Name() string { return "Abacus" }

// QueueLen implements Scheduler.
func (a *Abacus) QueueLen() int {
	n := 0
	for _, q := range a.queues {
		n += len(q)
	}
	return n
}

// Rounds returns the number of completed scheduling rounds.
func (a *Abacus) Rounds() int64 { return a.rounds }

// PredictRounds returns the number of batched duration-model invocations.
func (a *Abacus) PredictRounds() int64 { return a.predictRounds }

// Drops returns the number of dropped queries.
func (a *Abacus) Drops() int64 { return a.drops }

// GroupStats reports the mean queries per issued group and mean operators
// per issued group — how aggressively the controller packs overlap.
func (a *Abacus) GroupStats() (meanMembers, meanOps float64) {
	if a.groupsIssued == 0 {
		return 0, 0
	}
	n := float64(a.groupsIssued)
	return float64(a.groupMembers) / n, float64(a.groupOps) / n
}

// Enqueue implements Scheduler.
func (a *Abacus) Enqueue(q *Query) {
	validateQuery(q)
	q.posted = q.NextOp
	a.queues[q.Service.ID] = append(a.queues[q.Service.ID], q)
	switch {
	case a.next != nil:
		// A group is formed but not yet issued: redo the round so the
		// arrival competes for it instead of waiting a full extra group.
		// While the device is executing, the re-search stays hidden behind
		// execution, preserving the pipelining property (§6.3).
		a.next = nil
		a.beginRound()
	case a.forming:
		a.reform = true
	case a.inFlight == nil && !a.exec.Busy():
		a.beginRound()
	}
}

// candidates returns, per service, the first query whose operators are not
// yet fully scheduled (posted view), skipping nothing else: FIFO within a
// service.
func (a *Abacus) candidates() []*Query {
	var out []*Query
	for _, svc := range a.servicesInUse() {
		for _, q := range a.queues[svc] {
			if q.Dropped || q.done {
				continue
			}
			if q.posted < dnn.Get(q.Service.Model).NumOps() {
				out = append(out, q)
				break
			}
			// Head fully scheduled (finishing in flight); the service's
			// process is free for the next group, so look deeper.
		}
	}
	return out
}

func (a *Abacus) servicesInUse() []int {
	ids := make([]int, 0, len(a.queues))
	for id := range a.queues {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// headroom computes the scheduling headroom of q for a group that will be
// issued at refTime (Eq. 2 / Eq. 3).
func (a *Abacus) headroom(q *Query, refTime sim.Time) float64 {
	return q.Deadline() - refTime
}

// refTime is the predicted issue instant of the group being formed: now if
// the device is free, else the in-flight group's predicted completion.
func (a *Abacus) refTime() sim.Time {
	if a.inFlight != nil {
		end := a.inFlight.issued + a.inFlight.predLat
		if end > a.eng.Now() {
			return end
		}
	}
	return a.eng.Now()
}

// beginRound forms the next operator group and charges the search cost to
// the virtual clock. It must not be re-entered while forming. The search
// itself runs on a zero-delay event so that all queries enqueued at the
// same virtual instant compete for the group.
func (a *Abacus) beginRound() {
	if a.forming || a.next != nil {
		return
	}
	a.forming = true
	a.eng.Schedule(0, func() {
		group, predRounds := a.formGroup()
		cost := float64(predRounds) * a.cfg.PredictCost
		a.predictRounds += int64(predRounds)
		if group == nil {
			// Nothing to schedule; the next Enqueue or group completion
			// retries.
			a.forming = false
			a.reform = false
			return
		}
		a.rounds++
		a.eng.Schedule(cost, a.onFormed(group))
	})
}

// onFormed returns the callback that runs once the group's search cost has
// been paid on the virtual clock.
func (a *Abacus) onFormed(group *formedGroup) func() {
	return func() {
		a.forming = false
		if a.reform {
			// Arrivals landed mid-formation; redo the round so they
			// compete for this group (another search round is cheap
			// relative to a group execution).
			a.reform = false
			a.beginRound()
			return
		}
		a.next = group
		a.next.ready = true
		if !a.exec.Busy() && a.inFlight == nil {
			a.issue()
		}
	}
}

// formGroup runs one headroom-based scheduling round (§6.2) and returns the
// formed group plus the number of batched predictions spent. A nil group
// means no schedulable queries remain.
func (a *Abacus) formGroup() (*formedGroup, int) {
	predRounds := 0
	ref := a.refTime()
	for {
		cands := a.candidates()
		if len(cands) == 0 {
			return nil, predRounds
		}
		sort.Slice(cands, func(i, j int) bool {
			hi, hj := a.headroom(cands[i], ref), a.headroom(cands[j], ref)
			if hi != hj {
				return hi < hj
			}
			if cands[i].Arrival != cands[j].Arrival {
				return cands[i].Arrival < cands[j].Arrival
			}
			return cands[i].ID < cands[j].ID
		})

		qmin := cands[0]
		budget := a.headroom(qmin, ref)
		m := dnn.Get(qmin.Service.Model)
		base := &formedGroup{members: []member{{q: qmin, start: qmin.posted, end: m.NumOps()}}}
		lat := a.model.Predict(base.group())
		predRounds++
		if a.cfg.Drop && lat > budget {
			// Even running alone, the least-headroom query cannot meet its
			// deadline: drop it and restart the round (§6.2).
			a.drop(qmin)
			continue
		}
		base.predLat = lat

		// Greedily extend with the other queries' operators, most-urgent
		// first, under q_min's headroom budget.
		for _, q := range cands[1:] {
			span, newLat, rounds := a.searchSpan(base, q, budget)
			predRounds += rounds
			if span > 0 {
				base.members = append(base.members, member{q: q, start: q.posted, end: q.posted + span})
				base.predLat = newLat
			}
		}
		return base, predRounds
	}
}

// drop removes a query from its service queue and emits it as dropped.
func (a *Abacus) drop(q *Query) {
	q.Dropped = true
	q.Finish = a.eng.Now()
	a.drops++
	queue := a.queues[q.Service.ID]
	for i, cand := range queue {
		if cand == q {
			a.queues[q.Service.ID] = append(queue[:i], queue[i+1:]...)
			break
		}
	}
	a.sink(q)
}

// issue hands the formed group to the executor and immediately starts
// forming the following round (pipelined scheduling, §6.3).
func (a *Abacus) issue() {
	g := a.next
	a.next = nil
	if len(g.members) == 0 {
		return
	}
	g.issued = a.eng.Now()
	a.inFlight = g
	a.groupsIssued++
	a.groupMembers += int64(len(g.members))
	for _, m := range g.members {
		m.q.posted = m.end
		a.groupOps += int64(m.end - m.start)
	}
	a.exec.Execute(g.group(), func() { a.onGroupDone(g) })
	if a.cfg.Pipelined {
		a.beginRound()
	}
}

// onGroupDone commits the group's progress, emits finished queries, and
// keeps the pipeline moving.
func (a *Abacus) onGroupDone(g *formedGroup) {
	a.inFlight = nil
	now := a.eng.Now()
	for _, m := range g.members {
		q := m.q
		if q.Dropped {
			continue // dropped mid-flight; results discarded
		}
		q.segments++
		q.NextOp = m.end
		if q.NextOp == dnn.Get(q.Service.Model).NumOps() {
			q.Finish = now
			q.done = true
			a.removeFromQueue(q)
			a.sink(q)
		}
	}
	switch {
	case a.next != nil && a.next.ready:
		a.issue()
	case a.forming:
		// The pipelined formation is still paying its prediction cost; it
		// will issue on completion.
	default:
		a.beginRound()
	}
}

func (a *Abacus) removeFromQueue(q *Query) {
	queue := a.queues[q.Service.ID]
	for i, cand := range queue {
		if cand == q {
			a.queues[q.Service.ID] = append(queue[:i], queue[i+1:]...)
			return
		}
	}
}
