package sched

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/predictor"
	"abacus/internal/sim"
)

// SequentialPolicy selects the ordering rule of the sequential baselines.
type SequentialPolicy int

// The per-GPU policies used by Nexus and Clockwork (§2, §7.1).
const (
	FCFS SequentialPolicy = iota // first come, first served
	SJF                          // shortest (predicted) job first
	EDF                          // earliest deadline first
)

// String returns the policy's conventional name.
func (p SequentialPolicy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case SJF:
		return "SJF"
	case EDF:
		return "EDF"
	default:
		return fmt.Sprintf("SequentialPolicy(%d)", int(p))
	}
}

// Sequential is a baseline scheduler that runs one whole query at a time,
// exclusively, in FCFS/SJF/EDF order with the query-drop mechanism. This is
// how prior work keeps latency predictable: operators never overlap, at the
// cost of utilization (§3.1).
type Sequential struct {
	policy SequentialPolicy
	eng    *sim.Engine
	exec   *executor.Executor
	sink   Sink
	cfg    Config

	queue    []*Query
	est      map[estKey]float64 // SJF duration estimates
	dispatch bool               // a dispatch decision is pending (SJF predict delay)
}

type estKey struct {
	model  dnn.ModelID
	batch  int
	seqLen int
}

// NewSequential builds a baseline scheduler over the executor.
func NewSequential(policy SequentialPolicy, eng *sim.Engine, exec *executor.Executor, cfg Config, sink Sink) *Sequential {
	return &Sequential{
		policy: policy,
		eng:    eng,
		exec:   exec,
		sink:   sink,
		cfg:    cfg.withDefaults(),
		est:    make(map[estKey]float64),
	}
}

// Name implements Scheduler.
func (s *Sequential) Name() string { return s.policy.String() }

// QueueLen implements Scheduler.
func (s *Sequential) QueueLen() int {
	n := len(s.queue)
	if s.exec.Busy() {
		n++
	}
	return n
}

// Enqueue implements Scheduler.
func (s *Sequential) Enqueue(q *Query) {
	validateQuery(q)
	s.queue = append(s.queue, q)
	s.maybeDispatch()
}

func (s *Sequential) maybeDispatch() {
	if s.exec.Busy() || s.dispatch || len(s.queue) == 0 {
		return
	}
	if s.policy == SJF && s.cfg.PredictCost > 0 {
		// SJF must predict the duration of every queued query before it can
		// order the queue, and — unlike Abacus — it has no concurrent group
		// execution to hide the predictions behind (§7.2). The cost scales
		// with the queue depth, which is why the paper finds SJF the worst
		// of the four policies under load.
		cost := s.cfg.PredictCost * float64(len(s.queue))
		s.dispatch = true
		s.eng.Schedule(cost, func() {
			s.dispatch = false
			s.dispatchNow()
		})
		return
	}
	s.dispatchNow()
}

func (s *Sequential) dispatchNow() {
	if s.exec.Busy() {
		return
	}
	now := s.eng.Now()
	// Query-drop mechanism: discard queued queries already past their QoS
	// target (§7.1).
	if s.cfg.Drop {
		kept := s.queue[:0]
		for _, q := range s.queue {
			if now > q.Deadline() {
				q.Dropped = true
				q.Finish = now
				s.sink(q)
				continue
			}
			kept = append(kept, q)
		}
		s.queue = kept
	}
	if len(s.queue) == 0 {
		return
	}

	best := 0
	for i := 1; i < len(s.queue); i++ {
		if s.less(s.queue[i], s.queue[best]) {
			best = i
		}
	}
	q := s.queue[best]
	s.queue = append(s.queue[:best], s.queue[best+1:]...)

	m := dnn.Get(q.Service.Model)
	group := predictor.Group{{
		Model:   q.Service.Model,
		OpStart: q.NextOp,
		OpEnd:   m.NumOps(),
		Batch:   q.Input.Batch,
		SeqLen:  q.Input.SeqLen,
	}}
	s.exec.Execute(group, func() {
		q.NextOp = m.NumOps()
		q.Finish = s.eng.Now()
		q.done = true
		s.sink(q)
		s.maybeDispatch()
	})
}

// less orders queries by the configured policy, breaking ties by arrival
// then ID for determinism.
func (s *Sequential) less(a, b *Query) bool {
	switch s.policy {
	case SJF:
		da, db := s.estimate(a), s.estimate(b)
		if da != db {
			return da < db
		}
	case EDF:
		if a.Deadline() != b.Deadline() {
			return a.Deadline() < b.Deadline()
		}
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// estimate returns the exclusive execution time of the query, memoized per
// (model, input).
func (s *Sequential) estimate(q *Query) float64 {
	k := estKey{q.Service.Model, q.Input.Batch, q.Input.SeqLen}
	if v, ok := s.est[k]; ok {
		return v
	}
	v := executor.ExclusiveLatency(q.Service.Model, q.Input, s.exec.Device().Profile())
	s.est[k] = v
	return v
}
