package sched

import (
	"math/rand"
	"testing"

	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/sim"
)

type harness struct {
	eng      *sim.Engine
	exec     *executor.Executor
	services []*Service
	emitted  []*Query
	profile  gpusim.Profile
}

func newHarness(t *testing.T, models ...dnn.ModelID) *harness {
	t.Helper()
	p := gpusim.A100Profile()
	eng := sim.NewEngine()
	dev := gpusim.New(eng, p)
	return &harness{
		eng:      eng,
		exec:     executor.New(dev, 0.02),
		services: Services(models, 2, p),
		profile:  p,
	}
}

func (h *harness) sink(q *Query) { h.emitted = append(h.emitted, q) }

func (h *harness) query(id int64, svc int, batch int, arrival sim.Time) *Query {
	in := dnn.Input{Batch: batch}
	if dnn.Get(h.services[svc].Model).IsSequence() {
		in.SeqLen = 32
	}
	return &Query{ID: id, Service: h.services[svc], Input: in, Arrival: arrival}
}

func TestServicesQoSRule(t *testing.T) {
	p := gpusim.A100Profile()
	svcs := Services([]dnn.ModelID{dnn.ResNet152, dnn.Bert}, 2, p)
	for _, s := range svcs {
		m := dnn.Get(s.Model)
		solo := dnn.TransferTime(m, m.MaxInput(), p) + executor.ExclusiveLatency(s.Model, m.MaxInput(), p)
		if diff := s.QoS - 2*solo; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v QoS = %v, want 2x solo %v", s.Model, s.QoS, 2*solo)
		}
	}
	small := SmallServices([]dnn.ModelID{dnn.ResNet152}, 2, p)
	if small[0].QoS >= svcs[0].QoS {
		t.Errorf("small-input QoS %v should be tighter than max-input QoS %v", small[0].QoS, svcs[0].QoS)
	}
}

func TestQueryAccessors(t *testing.T) {
	svc := &Service{ID: 0, Model: dnn.ResNet50, QoS: 40}
	q := &Query{ID: 1, Service: svc, Input: dnn.Input{Batch: 8}, Arrival: 100}
	if q.Deadline() != 140 {
		t.Errorf("Deadline = %v, want 140", q.Deadline())
	}
	q.Finish = 130
	if q.Latency() != 30 {
		t.Errorf("Latency = %v, want 30", q.Latency())
	}
	if q.Violated() {
		t.Error("query within QoS flagged as violated")
	}
	q.Finish = 150
	if !q.Violated() {
		t.Error("late query not flagged")
	}
	q.Finish = 120
	q.Dropped = true
	if !q.Violated() {
		t.Error("dropped query must count as violated")
	}
	if got := q.Remaining(); got != dnn.Get(dnn.ResNet50).NumOps() {
		t.Errorf("Remaining = %d, want full model", got)
	}
}

func TestSequentialFCFSOrdersByArrival(t *testing.T) {
	h := newHarness(t, dnn.ResNet50, dnn.InceptionV3)
	s := NewSequential(FCFS, h.eng, h.exec, DefaultConfig(), h.sink)
	// Enqueue out of order at t=0; FCFS must pick by Arrival field.
	qa := h.query(1, 0, 8, 0)
	qb := h.query(2, 1, 8, 0)
	qb.Arrival = 0
	qa.Arrival = 0
	qb.ID = 1
	qa.ID = 2
	s.Enqueue(qa)
	s.Enqueue(qb)
	h.eng.Run()
	if len(h.emitted) != 2 {
		t.Fatalf("emitted %d", len(h.emitted))
	}
	// qa was enqueued first and dispatched immediately (executor idle).
	if h.emitted[0] != qa {
		t.Error("first enqueued query should finish first under FCFS")
	}
}

func TestSequentialSJFOrdersByDuration(t *testing.T) {
	h := newHarness(t, dnn.VGG19, dnn.ResNet50)
	cfg := DefaultConfig()
	s := NewSequential(SJF, h.eng, h.exec, cfg, h.sink)
	big := h.query(1, 0, 32, 0)   // VGG19 bs32: long
	small := h.query(2, 1, 4, 0)  // Res50 bs4: short
	small2 := h.query(3, 1, 4, 0) // another short
	// Occupy the executor, then enqueue big before small: SJF should still
	// run the smalls first once free.
	s.Enqueue(small2)
	s.Enqueue(big)
	s.Enqueue(small)
	h.eng.Run()
	if len(h.emitted) != 3 {
		t.Fatalf("emitted %d", len(h.emitted))
	}
	if h.emitted[len(h.emitted)-1] != big {
		t.Error("SJF should finish the long VGG19 query last")
	}
}

func TestSequentialEDFOrdersByDeadline(t *testing.T) {
	h := newHarness(t, dnn.ResNet152, dnn.InceptionV3)
	s := NewSequential(EDF, h.eng, h.exec, DefaultConfig(), h.sink)
	blocker := h.query(1, 0, 4, 0)
	late := h.query(2, 0, 8, 0) // Res152: big QoS → late deadline
	urgent := h.query(3, 1, 8, 0)
	// IncepV3 QoS < Res152 QoS → urgent has the earlier deadline.
	if urgent.Deadline() >= late.Deadline() {
		t.Skip("deadline ordering assumption violated by calibration")
	}
	s.Enqueue(blocker)
	s.Enqueue(late)
	s.Enqueue(urgent)
	h.eng.Run()
	if len(h.emitted) != 3 {
		t.Fatalf("emitted %d", len(h.emitted))
	}
	if h.emitted[1] != urgent {
		t.Error("EDF should run the earlier-deadline query first after the blocker")
	}
}

func TestSequentialDropsExpiredQueries(t *testing.T) {
	h := newHarness(t, dnn.ResNet152)
	s := NewSequential(FCFS, h.eng, h.exec, DefaultConfig(), h.sink)
	blocker := h.query(1, 0, 32, 0)
	stale := h.query(2, 0, 32, 0)
	s.Enqueue(blocker)
	// Enqueue a query whose deadline passes while the blocker runs.
	stale.Arrival = -2 * h.services[0].QoS
	s.Enqueue(stale)
	h.eng.Run()
	if !stale.Dropped {
		t.Error("expired query was not dropped")
	}
	if blocker.Dropped {
		t.Error("fresh query wrongly dropped")
	}
}

func TestSequentialDropDisabled(t *testing.T) {
	h := newHarness(t, dnn.ResNet152)
	cfg := DefaultConfig()
	cfg.Drop = false
	s := NewSequential(FCFS, h.eng, h.exec, cfg, h.sink)
	blocker := h.query(1, 0, 32, 0)
	stale := h.query(2, 0, 32, 0)
	stale.Arrival = -2 * h.services[0].QoS
	s.Enqueue(blocker)
	s.Enqueue(stale)
	h.eng.Run()
	if stale.Dropped {
		t.Error("query dropped with Drop disabled")
	}
	if !stale.Violated() {
		t.Error("stale query should still be a violation")
	}
}

func TestSequentialQueueLen(t *testing.T) {
	h := newHarness(t, dnn.ResNet50)
	s := NewSequential(FCFS, h.eng, h.exec, DefaultConfig(), h.sink)
	if s.QueueLen() != 0 {
		t.Error("fresh scheduler has non-zero queue")
	}
	s.Enqueue(h.query(1, 0, 8, 0))
	s.Enqueue(h.query(2, 0, 8, 0))
	if s.QueueLen() != 2 {
		t.Errorf("QueueLen = %d, want 2 (1 executing + 1 queued)", s.QueueLen())
	}
	h.eng.Run()
	if s.QueueLen() != 0 {
		t.Errorf("QueueLen = %d after drain", s.QueueLen())
	}
}

func abacusHarness(t *testing.T, models ...dnn.ModelID) (*harness, *Abacus) {
	h := newHarness(t, models...)
	a := NewAbacus(h.eng, h.exec, predictor.Oracle{Profile: h.profile}, DefaultConfig(), h.sink)
	return h, a
}

func TestAbacusCompletesSingleQuery(t *testing.T) {
	h, a := abacusHarness(t, dnn.ResNet50)
	q := h.query(1, 0, 16, 0)
	a.Enqueue(q)
	h.eng.Run()
	if len(h.emitted) != 1 || h.emitted[0] != q {
		t.Fatalf("emitted %v", h.emitted)
	}
	if q.Dropped || !q.Violated() == false && q.Latency() <= 0 {
		t.Errorf("query state: dropped=%v latency=%v", q.Dropped, q.Latency())
	}
	if q.NextOp != dnn.Get(dnn.ResNet50).NumOps() {
		t.Errorf("NextOp = %d, want full model", q.NextOp)
	}
}

func TestAbacusOverlapsTwoServices(t *testing.T) {
	h, a := abacusHarness(t, dnn.ResNet152, dnn.InceptionV3)
	q1 := h.query(1, 0, 16, 0)
	q2 := h.query(2, 1, 16, 0)
	a.Enqueue(q1)
	a.Enqueue(q2)
	h.eng.Run()
	if len(h.emitted) != 2 {
		t.Fatalf("emitted %d", len(h.emitted))
	}
	makespan := maxTime(q1.Finish, q2.Finish)
	p := h.profile
	seq := executor.ExclusiveLatency(dnn.ResNet152, q1.Input, p) + executor.ExclusiveLatency(dnn.InceptionV3, q2.Input, p)
	if makespan >= seq {
		t.Errorf("Abacus makespan %v not better than sequential %v", makespan, seq)
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func TestAbacusSegmentsAcrossGroups(t *testing.T) {
	// With one urgent query and one long query, the long query should be
	// split across multiple groups (its NextOp advances in steps).
	h, a := abacusHarness(t, dnn.InceptionV3, dnn.ResNet152)
	long := h.query(1, 1, 32, 0)
	a.Enqueue(long)
	// A stream of urgent Inception queries keeps arriving.
	for i := 0; i < 4; i++ {
		q := h.query(int64(2+i), 0, 8, sim.Time(i)*8)
		h.eng.ScheduleAt(q.Arrival, func() { a.Enqueue(q) })
	}
	h.eng.Run()
	if len(h.emitted) != 5 {
		t.Fatalf("emitted %d, want 5", len(h.emitted))
	}
	for _, q := range h.emitted {
		if q.Dropped {
			t.Errorf("query %d dropped in an uncongested run", q.ID)
		}
	}
	if a.Rounds() < 2 {
		t.Errorf("Rounds = %d; expected the long query to be segmented across multiple groups", a.Rounds())
	}
}

func TestAbacusDropsDoomedQuery(t *testing.T) {
	h, a := abacusHarness(t, dnn.ResNet152)
	q := h.query(1, 0, 32, 0)
	q.Arrival = -h.services[0].QoS * 2 // deadline long gone
	a.Enqueue(q)
	h.eng.Run()
	if !q.Dropped {
		t.Error("doomed query not dropped")
	}
	if a.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", a.Drops())
	}
}

func TestAbacusRequiresModel(t *testing.T) {
	h := newHarness(t, dnn.ResNet50)
	defer func() {
		if recover() == nil {
			t.Error("did not panic")
		}
	}()
	NewAbacus(h.eng, h.exec, nil, DefaultConfig(), h.sink)
}

func TestAbacusFIFOWithinService(t *testing.T) {
	h, a := abacusHarness(t, dnn.ResNet50)
	q1 := h.query(1, 0, 8, 0)
	q2 := h.query(2, 0, 8, 0)
	a.Enqueue(q1)
	a.Enqueue(q2)
	h.eng.Run()
	if len(h.emitted) != 2 || h.emitted[0] != q1 || h.emitted[1] != q2 {
		t.Error("same-service queries must finish in FIFO order")
	}
}

func TestAbacusNonPipelinedStillCorrect(t *testing.T) {
	h := newHarness(t, dnn.ResNet50, dnn.Bert)
	cfg := DefaultConfig()
	cfg.Pipelined = false
	a := NewAbacus(h.eng, h.exec, predictor.Oracle{Profile: h.profile}, cfg, h.sink)
	for i := 0; i < 6; i++ {
		q := h.query(int64(i+1), i%2, 8, sim.Time(i)*2)
		h.eng.ScheduleAt(q.Arrival, func() { a.Enqueue(q) })
	}
	h.eng.Run()
	if len(h.emitted) != 6 {
		t.Fatalf("emitted %d, want 6", len(h.emitted))
	}
}

func TestProbePoints(t *testing.T) {
	cases := []struct {
		lo, hi, ways int
		want         []int
	}{
		{0, 8, 4, []int{1, 3, 4, 6}},
		{0, 3, 4, []int{1, 2, 3}},
		{5, 6, 4, []int{6}},
		{0, 10, 1, []int{5}}, // 1-way search probes the midpoint (binary search)
		{3, 3, 4, nil},
	}
	for _, c := range cases {
		got := probePoints(c.lo, c.hi, c.ways)
		if len(got) != len(c.want) {
			t.Errorf("probePoints(%d,%d,%d) = %v, want %v", c.lo, c.hi, c.ways, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("probePoints(%d,%d,%d) = %v, want %v", c.lo, c.hi, c.ways, got, c.want)
				break
			}
		}
	}
}

func TestProbePointsInvariants(t *testing.T) {
	for lo := 0; lo < 12; lo++ {
		for hi := lo; hi < 20; hi++ {
			for ways := 1; ways <= 6; ways++ {
				pts := probePoints(lo, hi, ways)
				if hi == lo {
					if pts != nil {
						t.Fatalf("probePoints(%d,%d,%d) should be nil", lo, hi, ways)
					}
					continue
				}
				if len(pts) == 0 {
					t.Fatalf("probePoints(%d,%d,%d) empty for non-empty bracket", lo, hi, ways)
				}
				prev := lo
				for _, p := range pts {
					if p <= prev || p > hi {
						t.Fatalf("probe %d out of (%d,%d] or non-increasing: %v", p, lo, hi, pts)
					}
					prev = p
				}
			}
		}
	}
}

func TestSequentialPolicyString(t *testing.T) {
	if FCFS.String() != "FCFS" || SJF.String() != "SJF" || EDF.String() != "EDF" {
		t.Error("policy names wrong")
	}
}

// linearModel is a synthetic latency model: group latency is the weighted
// sum of span lengths — monotone in every span, so the search's answer can
// be checked against brute force.
type linearModel struct{}

func (linearModel) Predict(g predictor.Group) float64 {
	var s float64
	for _, e := range g {
		s += float64(e.OpEnd-e.OpStart) * (1 + float64(e.Model)*0.1)
	}
	return s
}

func (m linearModel) PredictBatch(gs []predictor.Group) []float64 {
	out := make([]float64, len(gs))
	for i, g := range gs {
		out[i] = m.Predict(g)
	}
	return out
}

func TestMaxFeasibleSpanMatchesBruteForce(t *testing.T) {
	model := linearModel{}
	base := predictor.Group{{Model: dnn.ResNet50, OpStart: 0, OpEnd: 50, Batch: 8}}
	entry := predictor.Entry{Model: dnn.VGG16, OpStart: 3, Batch: 8}
	for _, maxSpan := range []int{1, 2, 7, 33, 100} {
		for _, budget := range []float64{0, 49, 50, 55.5, 63, 1000} {
			for ways := 1; ways <= 6; ways++ {
				got, lat, rounds := MaxFeasibleSpan(model, base, entry, maxSpan, budget, ways)
				// Brute force.
				want := 0
				for k := 1; k <= maxSpan; k++ {
					e := entry
					e.OpEnd = e.OpStart + k
					if model.Predict(append(append(predictor.Group{}, base...), e)) <= budget {
						want = k
					}
				}
				if got != want {
					t.Fatalf("maxSpan=%d budget=%v ways=%d: got %d, want %d", maxSpan, budget, ways, got, want)
				}
				if got > 0 {
					e := entry
					e.OpEnd = e.OpStart + got
					exact := model.Predict(append(append(predictor.Group{}, base...), e))
					if lat != exact {
						t.Fatalf("returned latency %v != exact %v", lat, exact)
					}
				}
				// O(log) rounds: generous bound.
				if rounds > maxSpan+1 {
					t.Fatalf("rounds %d too many for maxSpan %d", rounds, maxSpan)
				}
			}
		}
	}
}

// TestAbacusRandomizedSoak drives the controller with random arrival
// patterns and checks the global invariants: every query is emitted exactly
// once, finished queries completed all operators, per-service FIFO order
// holds among completions, and the run is deterministic.
func TestAbacusRandomizedSoak(t *testing.T) {
	run := func(seed int64) []int64 {
		h := newHarness(t, dnn.ResNet50, dnn.InceptionV3, dnn.Bert)
		a := NewAbacus(h.eng, h.exec, predictor.Oracle{Profile: h.profile}, DefaultConfig(), h.sink)
		rng := rand.New(rand.NewSource(seed))
		batches := dnn.Batches()
		const n = 60
		for i := 0; i < n; i++ {
			svc := rng.Intn(3)
			q := h.query(int64(i+1), svc, batches[rng.Intn(len(batches))], sim.Time(rng.Float64()*800))
			h.eng.ScheduleAt(q.Arrival, func() { a.Enqueue(q) })
		}
		h.eng.Run()
		if len(h.emitted) != n {
			t.Fatalf("seed %d: emitted %d of %d queries", seed, len(h.emitted), n)
		}
		seen := map[int64]bool{}
		lastFinish := map[int]sim.Time{}
		var ids []int64
		for _, q := range h.emitted {
			if seen[q.ID] {
				t.Fatalf("seed %d: query %d emitted twice", seed, q.ID)
			}
			seen[q.ID] = true
			ids = append(ids, q.ID)
			if q.Dropped {
				continue
			}
			if q.NextOp != dnn.Get(q.Service.Model).NumOps() {
				t.Fatalf("seed %d: query %d finished with NextOp %d", seed, q.ID, q.NextOp)
			}
			if q.Latency() <= 0 {
				t.Fatalf("seed %d: query %d latency %v", seed, q.ID, q.Latency())
			}
			if q.Finish < lastFinish[q.Service.ID] {
				t.Fatalf("seed %d: service %d completions out of order", seed, q.Service.ID)
			}
			lastFinish[q.Service.ID] = q.Finish
		}
		return ids
	}
	for seed := int64(1); seed <= 4; seed++ {
		a := run(seed)
		b := run(seed)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: emission order differs between identical runs", seed)
			}
		}
	}
}

// TestAbacusExactlyOnceUnderOverload verifies emit-exactly-once when the
// drop path fires frequently.
func TestAbacusExactlyOnceUnderOverload(t *testing.T) {
	h := newHarness(t, dnn.VGG16, dnn.VGG19)
	a := NewAbacus(h.eng, h.exec, predictor.Oracle{Profile: h.profile}, DefaultConfig(), h.sink)
	const n = 80
	for i := 0; i < n; i++ {
		q := h.query(int64(i+1), i%2, 32, sim.Time(i)) // 1 ms apart: heavy overload
		h.eng.ScheduleAt(q.Arrival, func() { a.Enqueue(q) })
	}
	h.eng.Run()
	if len(h.emitted) != n {
		t.Fatalf("emitted %d of %d", len(h.emitted), n)
	}
	if a.Drops() == 0 {
		t.Error("expected drops under heavy overload")
	}
	seen := map[int64]bool{}
	for _, q := range h.emitted {
		if seen[q.ID] {
			t.Fatalf("query %d emitted twice", q.ID)
		}
		seen[q.ID] = true
	}
}

// unitModel charges a fixed cost per operator: group latency =
// 0.04 ms × total operators. It makes the Figure 12 walkthrough's
// arithmetic exact.
type unitModel struct{}

const unitOpCost = 0.04

func (unitModel) Predict(g predictor.Group) float64 {
	var ops int
	for _, e := range g {
		ops += e.OpEnd - e.OpStart
	}
	return float64(ops) * unitOpCost
}

func (m unitModel) PredictBatch(gs []predictor.Group) []float64 {
	out := make([]float64, len(gs))
	for i, g := range gs {
		out[i] = m.Predict(g)
	}
	return out
}

// TestFigure12Walkthrough recreates the paper's Figure 12 example: three
// queries with headrooms 45/35/25 ms. The controller must (1) pick the
// 25 ms query as q_min and schedule all of its operators, (2) add as many
// of the 35 ms query's operators as fit the remaining budget, and (3) give
// whatever is left (here: nothing) to the 45 ms query.
func TestFigure12Walkthrough(t *testing.T) {
	h := newHarness(t, dnn.ResNet50, dnn.ResNet101, dnn.ResNet152)
	// Override QoS so that at t=0 the headrooms are exactly 45/35/25.
	h.services[0].QoS = 45 // Res50  (q1)
	h.services[1].QoS = 35 // Res101 (q2)
	h.services[2].QoS = 25 // Res152 (q3)
	a := NewAbacus(h.eng, h.exec, unitModel{}, DefaultConfig(), h.sink)

	q1 := h.query(1, 0, 8, 0)
	q2 := h.query(2, 1, 8, 0)
	q3 := h.query(3, 2, 8, 0)
	for _, q := range []*Query{q1, q2, q3} {
		q.posted = 0
		a.queues[q.Service.ID] = append(a.queues[q.Service.ID], q)
	}

	group, _ := a.formGroup()
	if group == nil {
		t.Fatal("no group formed")
	}
	byQuery := map[*Query][2]int{}
	for _, m := range group.members {
		byQuery[m.q] = [2]int{m.start, m.end}
	}

	// q3 (least headroom) runs to completion: all 514 Res152 operators,
	// 20.56 ms predicted.
	n3 := dnn.Get(dnn.ResNet152).NumOps()
	if span, ok := byQuery[q3]; !ok || span != [2]int{0, n3} {
		t.Fatalf("q3 span = %v, want full [0,%d)", byQuery[q3], n3)
	}
	// q2 gets the remaining (25 − 20.56)/0.04 = 111 operators.
	if span, ok := byQuery[q2]; !ok || span != [2]int{0, 111} {
		t.Fatalf("q2 span = %v, want [0,111)", byQuery[q2])
	}
	// No budget remains for q1.
	if span, ok := byQuery[q1]; ok {
		t.Fatalf("q1 unexpectedly scheduled: %v", span)
	}
	// The predicted group latency saturates q3's headroom exactly.
	if got := group.predLat; got != 25.0 {
		t.Fatalf("predicted group latency %v, want 25.0", got)
	}
}

func TestGroupStatsAndSegments(t *testing.T) {
	h, a := abacusHarness(t, dnn.ResNet152, dnn.InceptionV3)
	for i := 0; i < 8; i++ {
		q := h.query(int64(i+1), i%2, 16, sim.Time(i)*4)
		h.eng.ScheduleAt(q.Arrival, func() { a.Enqueue(q) })
	}
	h.eng.Run()
	members, ops := a.GroupStats()
	if members < 1 || ops < 1 {
		t.Fatalf("GroupStats = (%v, %v); want positive", members, ops)
	}
	if members > 2 {
		t.Fatalf("mean members %v exceeds the number of services", members)
	}
	for _, q := range h.emitted {
		if q.Dropped {
			continue
		}
		if q.Segments() < 1 {
			t.Errorf("query %d completed with %d segments", q.ID, q.Segments())
		}
	}
}

func TestGroupStatsEmpty(t *testing.T) {
	_, a := abacusHarness(t, dnn.ResNet50)
	if m, o := a.GroupStats(); m != 0 || o != 0 {
		t.Errorf("fresh controller GroupStats = (%v, %v)", m, o)
	}
}

func TestQuerySLOOverride(t *testing.T) {
	svc := &Service{ID: 0, Model: dnn.ResNet50, QoS: 40}
	q := &Query{ID: 1, Service: svc, Input: dnn.Input{Batch: 4}, Arrival: 100}
	if got := q.Deadline(); got != 140 {
		t.Errorf("default deadline = %v, want 140", got)
	}
	q.SLO = 15
	if got := q.Deadline(); got != 115 {
		t.Errorf("SLO deadline = %v, want 115", got)
	}
	q.Finish = 120
	if !q.Violated() {
		t.Error("finish past the SLO deadline not flagged as violation")
	}
}
