package sched

import (
	"abacus/internal/dnn"
	"abacus/internal/predictor"
)

// SpanSearcher runs the paper's multi-way span search (§6.3) over reusable
// scratch, so steady-state scheduling rounds probe candidate spans without
// allocating. Two probe paths:
//
//   - Encoded fast path, when the model implements
//     predictor.EncodedPredictor: the base group plus candidate entry are
//     validated and encoded once per search into a template feature row;
//     each probe copies the template and patches the candidate's opEnd
//     scalar in place, skipping the per-probe Group copy, re-validation,
//     and re-sort that used to dominate small-group encodes.
//   - Generic path, for wrapper models (perturbation, calibration,
//     memoization) that need Group structure: one backing entry array holds
//     all probe groups, base entries are written once per search, and only
//     the candidate's OpEnd mutates per probe.
//
// Both paths preserve the probe group's [base..., candidate] entry order
// and probe schedule exactly, so predictions — and therefore experiment and
// chaos reports — are bit-identical to the copying implementation.
// A SpanSearcher is not safe for concurrent use.
type SpanSearcher struct {
	probes []int
	lats   []float64

	// Encoded-path scratch.
	template []float64
	flat     []float64
	rows     [][]float64

	// Generic-path scratch.
	entries []predictor.Entry
	groups  []predictor.Group
}

// MaxFeasibleSpan finds the largest k such that extending the group with
// operators [e.OpStart, e.OpStart+k) of entry e keeps the predicted group
// latency within budget. It implements the paper's multi-way search (§6.3):
// each iteration probes `ways` candidate spans with one batched
// duration-model invocation and narrows the feasible bracket, so the number
// of rounds is O(log_ways N) instead of O(N).
//
// e.OpEnd is ignored; maxSpan bounds the search. It returns the span
// length, the predicted latency of the group with that span added
// (meaningful when k > 0), and the number of batched prediction rounds
// spent. It is a convenience wrapper over a fresh SpanSearcher; hot paths
// should hold a SpanSearcher and call Search to reuse its scratch.
func MaxFeasibleSpan(model predictor.LatencyModel, base predictor.Group, e predictor.Entry,
	maxSpan int, budget float64, ways int) (k int, lat float64, rounds int) {
	var s SpanSearcher
	return s.Search(model, base, e, maxSpan, budget, ways)
}

// Search runs one multi-way span search. See MaxFeasibleSpan for the
// contract.
func (s *SpanSearcher) Search(model predictor.LatencyModel, base predictor.Group, e predictor.Entry,
	maxSpan int, budget float64, ways int) (k int, lat float64, rounds int) {
	if maxSpan <= 0 {
		return 0, 0, 0
	}
	if ways < 1 {
		ways = 1
	}
	if cap(s.lats) < ways {
		s.lats = make([]float64, ways)
	}

	enc, encoded := model.(predictor.EncodedPredictor)
	var opEndIdx int
	if encoded {
		opEndIdx = s.prepareEncoded(enc.Codec(), base, e, maxSpan)
	} else {
		s.prepareGroups(base, e, ways)
	}

	lo, hi := 0, maxSpan // lo is known feasible (adding nothing), hi unknown
	var loLat float64
	for lo < hi {
		// Probe `ways` points in (lo, hi], always including hi.
		s.probes = appendProbePoints(s.probes[:0], lo, hi, ways)
		probes := s.probes
		lats := s.lats[:len(probes)]
		if encoded {
			for i, p := range probes {
				row := s.rows[i]
				copy(row, s.template)
				row[opEndIdx] = float64(e.OpStart + p)
			}
			enc.PredictEncoded(s.rows[:len(probes)], lats)
		} else {
			stride := len(base) + 1
			for i, p := range probes {
				s.entries[i*stride+len(base)].OpEnd = e.OpStart + p
			}
			copy(lats, model.PredictBatch(s.groups[:len(probes)]))
		}
		rounds++

		// Latency is monotone in span length; find the split point.
		feasibleIdx := -1
		for i := range probes {
			if lats[i] <= budget {
				feasibleIdx = i
			} else {
				break
			}
		}
		if feasibleIdx == -1 {
			hi = probes[0] - 1
			continue
		}
		lo = probes[feasibleIdx]
		loLat = lats[feasibleIdx]
		if feasibleIdx+1 < len(probes) {
			hi = probes[feasibleIdx+1] - 1
		}
	}
	return lo, loLat, rounds
}

// prepareEncoded validates the probe group once and encodes it into the
// template row at the candidate's maximal span, returning the flat index of
// the candidate's opEnd feature — the only scalar that varies across probes.
func (s *SpanSearcher) prepareEncoded(codec predictor.Codec, base predictor.Group, e predictor.Entry, maxSpan int) int {
	if cap(s.entries) < len(base)+1 {
		s.entries = make([]predictor.Entry, len(base)+1)
	}
	g := predictor.Group(s.entries[:0])
	g = append(g, base...)
	e.OpEnd = e.OpStart + maxSpan
	g = append(g, e)

	w := codec.Width()
	if cap(s.template) < w {
		s.template = make([]float64, w)
	}
	s.template = s.template[:w]
	codec.EncodeTo(s.template, g) // validates base+candidate once per search

	need := cap(s.lats) * w
	if cap(s.flat) < need {
		s.flat = make([]float64, need)
	}
	if cap(s.rows) < cap(s.lats) {
		s.rows = make([][]float64, cap(s.lats))
	}
	s.rows = s.rows[:cap(s.lats)]
	for i := range s.rows {
		s.rows[i] = s.flat[i*w : (i+1)*w]
	}

	// The candidate's slot is its rank in the canonical ascending-model
	// order (models in a valid group are distinct).
	slot := 0
	for _, b := range base {
		if b.Model < e.Model {
			slot++
		}
	}
	return codec.NumModels + 4*slot + 1
}

// prepareGroups lays out `ways` probe groups over one backing entry array:
// [base..., candidate] per group, with only the candidate's OpEnd mutated
// per probe.
func (s *SpanSearcher) prepareGroups(base predictor.Group, e predictor.Entry, ways int) {
	stride := len(base) + 1
	need := ways * stride
	if cap(s.entries) < need {
		s.entries = make([]predictor.Entry, need)
	}
	s.entries = s.entries[:need]
	if cap(s.groups) < ways {
		s.groups = make([]predictor.Group, ways)
	}
	s.groups = s.groups[:ways]
	for i := 0; i < ways; i++ {
		g := s.entries[i*stride : (i+1)*stride]
		copy(g, base)
		g[len(base)] = e // OpEnd patched per probe
		s.groups[i] = predictor.Group(g)
	}
}

// searchSpan adapts the span search to the controller's bookkeeping.
func (a *Abacus) searchSpan(base *formedGroup, q *Query, budget float64) (k int, lat float64, rounds int) {
	remaining := dnn.Get(q.Service.Model).NumOps() - q.posted
	entry := predictor.Entry{
		Model:   q.Service.Model,
		OpStart: q.posted,
		Batch:   q.Input.Batch,
		SeqLen:  q.Input.SeqLen,
	}
	return a.search.Search(a.model, base.group(), entry, remaining, budget, a.cfg.Ways)
}

// probePoints returns up to `ways` strictly increasing integers in
// (lo, hi], splitting the bracket into ways+1 regions so each prediction
// round shrinks it geometrically: 1-way search is binary search, m-way
// search converges in O(log_{m+1} N) rounds (§6.3's complexity claim).
func probePoints(lo, hi, ways int) []int {
	return appendProbePoints(nil, lo, hi, ways)
}

// appendProbePoints appends the probe schedule to dst, reusing its backing
// array across rounds.
func appendProbePoints(dst []int, lo, hi, ways int) []int {
	span := hi - lo
	if span <= 0 {
		return dst
	}
	if ways > span {
		ways = span
	}
	prev := lo
	for i := 1; i <= ways; i++ {
		p := lo + (span*i)/(ways+1)
		if p <= prev {
			p = prev + 1
		}
		if p > hi {
			break
		}
		dst = append(dst, p)
		prev = p
	}
	return dst
}
