package sched

import (
	"abacus/internal/dnn"
	"abacus/internal/predictor"
)

// MaxFeasibleSpan finds the largest k such that extending the group with
// operators [e.OpStart, e.OpStart+k) of entry e keeps the predicted group
// latency within budget. It implements the paper's multi-way search (§6.3):
// each iteration probes `ways` candidate spans with one batched
// duration-model invocation and narrows the feasible bracket, so the number
// of rounds is O(log_ways N) instead of O(N).
//
// e.OpEnd is ignored; maxSpan bounds the search. It returns the span
// length, the predicted latency of the group with that span added
// (meaningful when k > 0), and the number of batched prediction rounds
// spent.
func MaxFeasibleSpan(model predictor.LatencyModel, base predictor.Group, e predictor.Entry,
	maxSpan int, budget float64, ways int) (k int, lat float64, rounds int) {
	if maxSpan <= 0 {
		return 0, 0, 0
	}
	if ways < 1 {
		ways = 1
	}
	withSpan := func(n int) predictor.Group {
		g := append(predictor.Group(nil), base...)
		ee := e
		ee.OpEnd = ee.OpStart + n
		return append(g, ee)
	}

	lo, hi := 0, maxSpan // lo is known feasible (adding nothing), hi unknown
	var loLat float64
	for lo < hi {
		// Probe `ways` points in (lo, hi], always including hi.
		probes := probePoints(lo, hi, ways)
		groups := make([]predictor.Group, len(probes))
		for i, p := range probes {
			groups[i] = withSpan(p)
		}
		lats := model.PredictBatch(groups)
		rounds++

		// Latency is monotone in span length; find the split point.
		feasibleIdx := -1
		for i := range probes {
			if lats[i] <= budget {
				feasibleIdx = i
			} else {
				break
			}
		}
		if feasibleIdx == -1 {
			hi = probes[0] - 1
			continue
		}
		lo = probes[feasibleIdx]
		loLat = lats[feasibleIdx]
		if feasibleIdx+1 < len(probes) {
			hi = probes[feasibleIdx+1] - 1
		}
	}
	return lo, loLat, rounds
}

// searchSpan adapts MaxFeasibleSpan to the controller's bookkeeping.
func (a *Abacus) searchSpan(base *formedGroup, q *Query, budget float64) (k int, lat float64, rounds int) {
	remaining := dnn.Get(q.Service.Model).NumOps() - q.posted
	entry := predictor.Entry{
		Model:   q.Service.Model,
		OpStart: q.posted,
		Batch:   q.Input.Batch,
		SeqLen:  q.Input.SeqLen,
	}
	return MaxFeasibleSpan(a.model, base.group(), entry, remaining, budget, a.cfg.Ways)
}

// probePoints returns up to `ways` strictly increasing integers in
// (lo, hi], splitting the bracket into ways+1 regions so each prediction
// round shrinks it geometrically: 1-way search is binary search, m-way
// search converges in O(log_{m+1} N) rounds (§6.3's complexity claim).
func probePoints(lo, hi, ways int) []int {
	span := hi - lo
	if span <= 0 {
		return nil
	}
	if ways > span {
		ways = span
	}
	out := make([]int, 0, ways)
	prev := lo
	for i := 1; i <= ways; i++ {
		p := lo + (span*i)/(ways+1)
		if p <= prev {
			p = prev + 1
		}
		if p > hi {
			break
		}
		out = append(out, p)
		prev = p
	}
	return out
}
