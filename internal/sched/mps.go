package sched

import (
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/sim"
)

// FreeOverlap models MPS-style co-location without any scheduling (§3.2):
// every query's kernel chain launches the moment it arrives and overlaps
// arbitrarily with whatever else is resident. Latency becomes a function of
// random arrival interleavings — the unpredictability that motivates
// Abacus. It exists as the unmanaged baseline for the motivation experiment
// and the determinism ablation.
type FreeOverlap struct {
	eng  *sim.Engine
	dev  *gpusim.Device
	sink Sink

	outstanding int
}

// NewFreeOverlap builds the unmanaged baseline over a device.
func NewFreeOverlap(eng *sim.Engine, dev *gpusim.Device, sink Sink) *FreeOverlap {
	return &FreeOverlap{eng: eng, dev: dev, sink: sink}
}

// Name implements Scheduler.
func (f *FreeOverlap) Name() string { return "MPS" }

// QueueLen implements Scheduler: with no queueing, it is the number of
// in-flight queries.
func (f *FreeOverlap) QueueLen() int { return f.outstanding }

// Enqueue implements Scheduler: the query starts immediately.
func (f *FreeOverlap) Enqueue(q *Query) {
	validateQuery(q)
	m := dnn.Get(q.Service.Model)
	specs := dnn.Kernels(m, q.Input, f.dev.Profile(), q.NextOp, m.NumOps())
	f.outstanding++
	f.dev.RunChain(specs, func() {
		f.outstanding--
		q.NextOp = m.NumOps()
		q.Finish = f.eng.Now()
		q.done = true
		f.sink(q)
	})
}
