// Package sched implements the query schedulers of the paper's evaluation:
// the Abacus headroom-based query controller (§6) with multi-way search and
// pipelined scheduling, and the three sequential baselines — FCFS, SJF, and
// EDF with the query-drop mechanism — that Nexus and Clockwork use per GPU.
package sched

import (
	"fmt"

	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/sim"
)

// Service is one deployed DNN service with its QoS target.
type Service struct {
	ID    int
	Model dnn.ModelID
	QoS   float64 // latency target in ms (paper: 2× solo latency of the max input)
}

// Query is one user request being served.
type Query struct {
	ID      int64
	Service *Service
	Input   dnn.Input
	Arrival sim.Time // submission time; queuing, transfer, and execution all count against QoS
	// SLO, when positive, overrides the service QoS target for this query
	// alone (the online gateway's per-request deadline). Zero keeps the
	// service-wide target.
	SLO float64

	// NextOp is the first unexecuted operator (committed progress).
	NextOp int
	// posted is progress including the in-flight group (Abacus pipelining).
	posted int

	Finish  sim.Time
	Dropped bool
	done    bool

	segments int // operator groups this query participated in
}

// Segments reports how many operator groups the query was split across
// (1 means it ran in a single group; the paper's executor may divide a
// query into several segments, §6.1).
func (q *Query) Segments() int { return q.segments }

// Deadline returns the absolute QoS deadline: Arrival plus the per-query SLO
// override when set, the service-wide QoS target otherwise.
func (q *Query) Deadline() sim.Time {
	if q.SLO > 0 {
		return q.Arrival + q.SLO
	}
	return q.Arrival + q.Service.QoS
}

// Latency returns the end-to-end latency; valid once finished.
func (q *Query) Latency() float64 { return q.Finish - q.Arrival }

// Remaining returns the number of unexecuted operators (committed view).
func (q *Query) Remaining() int { return dnn.Get(q.Service.Model).NumOps() - q.NextOp }

// Violated reports whether the query finished after its deadline (dropped
// queries count as violations in the paper's Figure 15 accounting).
func (q *Query) Violated() bool { return q.Dropped || q.Finish > q.Deadline() }

// Scheduler is a per-GPU query scheduler. Enqueue is called on the
// simulation goroutine when a query's input transfer completes; the
// scheduler emits the query through its sink exactly once, either finished
// or dropped.
type Scheduler interface {
	Name() string
	Enqueue(*Query)
	// QueueLen reports queries accepted but not yet finished or dropped
	// (used by cluster-level routing).
	QueueLen() int
}

// Sink receives finished and dropped queries.
type Sink func(*Query)

// Config carries the scheduler tuning knobs shared across policies.
type Config struct {
	// Ways is the multi-way search width (§6.3); default 4.
	Ways int
	// PredictCost is the virtual CPU time of one batched duration-model
	// invocation, charged to the clock wherever it cannot be hidden
	// (default 0.09 ms, the Figure 23 regime).
	PredictCost float64
	// Pipelined enables forming the next group while the current one
	// executes (§6.3); default on. Exposed for the ablation benchmark.
	Pipelined bool
	// Drop enables the query-drop mechanism; default on for all policies
	// (the paper enables it for the baselines too, §7.1).
	Drop bool
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{Ways: 4, PredictCost: 0.09, Pipelined: true, Drop: true}
}

func (c Config) withDefaults() Config {
	if c.Ways <= 0 {
		c.Ways = 4
	}
	if c.PredictCost < 0 {
		c.PredictCost = 0
	}
	return c
}

// Services builds Service records for the given models with the paper's QoS
// rule: target = qosFactor × solo end-to-end latency (input transfer plus
// exclusive execution) at the model's maximum input (§7.1 uses factor 2).
func Services(models []dnn.ModelID, qosFactor float64, p gpusim.Profile) []*Service {
	return servicesAt(models, qosFactor, p, func(m *dnn.Model) dnn.Input { return m.MaxInput() })
}

// SmallServices builds services with QoS pinned to the minimum input (the
// Figure 16 small-DNN experiment).
func SmallServices(models []dnn.ModelID, qosFactor float64, p gpusim.Profile) []*Service {
	return servicesAt(models, qosFactor, p, func(m *dnn.Model) dnn.Input { return m.MinInput() })
}

func servicesAt(models []dnn.ModelID, qosFactor float64, p gpusim.Profile, input func(*dnn.Model) dnn.Input) []*Service {
	out := make([]*Service, len(models))
	for i, id := range models {
		m := dnn.Get(id)
		in := input(m)
		solo := dnn.TransferTime(m, in, p) + executor.ExclusiveLatency(id, in, p)
		out[i] = &Service{ID: i, Model: id, QoS: qosFactor * solo}
	}
	return out
}

func validateQuery(q *Query) {
	if q == nil || q.Service == nil {
		panic("sched: nil query or service")
	}
	if q.Input.Batch <= 0 {
		panic(fmt.Sprintf("sched: query %d has batch %d", q.ID, q.Input.Batch))
	}
}
