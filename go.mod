module abacus

go 1.23
