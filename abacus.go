// Package abacus is a Go reproduction of "Enable Simultaneous DNN Services
// Based on Deterministic Operator Overlap and Precise Latency Prediction"
// (Cui et al., SC '21).
//
// Abacus co-locates multiple latency-critical DNN inference services on one
// GPU. Instead of running queries sequentially (Nexus/Clockwork-style
// FCFS/SJF/EDF) or letting kernels overlap nondeterministically (MPS), it
// issues deterministic operator groups sized by an offline-trained latency
// predictor so that the query with the least QoS headroom still meets its
// deadline.
//
// The GPU, the DNN model zoo, and the serving stack are deterministic
// simulations (see DESIGN.md for the substitution rationale). The public
// API mirrors how the system would be used:
//
//	sys, _ := abacus.NewSystem(abacus.SystemConfig{
//		Models: []abacus.Model{abacus.ResNet152, abacus.InceptionV3},
//		Policy: abacus.PolicyAbacus,
//	})
//	report := sys.Serve(50, 10_000) // 50 QPS for 10 simulated seconds
//	fmt.Println(report)
//
// Deeper building blocks — the discrete-event GPU (internal/gpusim), the
// operator cost model (internal/dnn), the predictor (internal/predictor),
// and the schedulers (internal/sched) — are exposed through type aliases
// where they form part of the public surface.
package abacus

import (
	"fmt"
	"io"

	"abacus/internal/dnn"
	"abacus/internal/experiments"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/runner"
	"abacus/internal/sched"
	"abacus/internal/serving"
	"abacus/internal/trace"
)

// SetParallel sets the default worker count used by the concurrent sweeps
// (experiments, capacity search, training). n <= 0 restores GOMAXPROCS.
// Results are identical at any setting; see internal/runner.
func SetParallel(n int) { runner.SetDefaultParallel(n) }

// Model identifies one of the seven serving models from the paper's
// Table 1.
type Model = dnn.ModelID

// The model zoo.
const (
	ResNet50    = dnn.ResNet50
	ResNet101   = dnn.ResNet101
	ResNet152   = dnn.ResNet152
	InceptionV3 = dnn.InceptionV3
	VGG16       = dnn.VGG16
	VGG19       = dnn.VGG19
	Bert        = dnn.Bert
)

// Models returns the full zoo in paper order.
func Models() []Model { return experiments.ZooIDs() }

// ModelByName resolves a short model name ("Res152", "Bert", ...).
func ModelByName(name string) (Model, error) { return dnn.ModelIDByName(name) }

// Policy selects the per-GPU scheduling policy.
type Policy = serving.PolicyKind

// The evaluated policies: the three sequential baselines and Abacus, plus
// the two rejected extremes — MPS-style free overlap (§3.2) and
// Prema-style kernel-level scheduling (§5.1) — for ablations.
const (
	PolicyFCFS        = serving.PolicyFCFS
	PolicySJF         = serving.PolicySJF
	PolicyEDF         = serving.PolicyEDF
	PolicyAbacus      = serving.PolicyAbacus
	PolicyMPS         = serving.PolicyMPS
	PolicyKernelLevel = serving.PolicyKernelLevel
)

// Policies returns the paper's four evaluated policies in figure order.
func Policies() []Policy { return serving.AllPolicies() }

// Input is a query's runtime input (batch size; sequence length for BERT).
type Input = dnn.Input

// Group is a deterministic operator schedule group; Entry is one query's
// contiguous operator span within it.
type (
	Group = predictor.Group
	Entry = predictor.Entry
)

// Predictor is the trained overlap-aware latency predictor.
type Predictor = predictor.Predictor

// LatencyModel is anything that predicts operator-group latency: a trained
// Predictor or the exact Oracle.
type LatencyModel = predictor.LatencyModel

// Oracle answers latency queries by exact simulation — the
// perfect-predictor upper bound.
func Oracle() LatencyModel { return predictor.Oracle{Profile: gpusim.A100Profile()} }

// SystemConfig configures a single-GPU serving system.
type SystemConfig struct {
	// Models are the co-located services (1..4 of the zoo).
	Models []Model
	// Policy is the scheduler; default PolicyAbacus.
	Policy Policy
	// QoSFactor scales the per-service QoS target relative to the solo
	// latency of the maximum input; default 2 (the paper's setting).
	QoSFactor float64
	// Predictor supplies Abacus's duration model. Nil selects the exact
	// oracle; pass a TrainPredictor result for end-to-end fidelity.
	Predictor LatencyModel
	// Seed drives the workload generator; runs are deterministic given the
	// seed.
	Seed int64
}

// System is a single-GPU serving system over the simulated device.
type System struct {
	cfg      SystemConfig
	services []*sched.Service
}

// NewSystem validates the configuration and builds the system.
func NewSystem(cfg SystemConfig) (*System, error) {
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("abacus: no models configured")
	}
	if len(cfg.Models) > predictor.MaxCoLocated {
		return nil, fmt.Errorf("abacus: %d models exceed the supported co-location degree %d",
			len(cfg.Models), predictor.MaxCoLocated)
	}
	seen := map[Model]bool{}
	for _, m := range cfg.Models {
		if m < 0 || m >= dnn.NumModels {
			return nil, fmt.Errorf("abacus: unknown model id %d", int(m))
		}
		if seen[m] {
			// The Figure 8 feature encoding identifies a query by its model
			// bitmap bit, so each model may be deployed at most once per
			// GPU (matching the paper's deployments).
			return nil, fmt.Errorf("abacus: model %v deployed twice", m)
		}
		seen[m] = true
	}
	if cfg.QoSFactor == 0 {
		cfg.QoSFactor = 2
	}
	if cfg.QoSFactor <= 1 {
		return nil, fmt.Errorf("abacus: QoS factor %v must exceed 1", cfg.QoSFactor)
	}
	return &System{
		cfg:      cfg,
		services: sched.Services(cfg.Models, cfg.QoSFactor, gpusim.A100Profile()),
	}, nil
}

// QoSTargets returns the per-service QoS targets in ms, in Models order.
func (s *System) QoSTargets() []float64 {
	out := make([]float64, len(s.services))
	for i, svc := range s.services {
		out[i] = svc.QoS
	}
	return out
}

// Serve replays a Poisson workload of totalQPS queries per second
// (aggregated over all services, random inputs per the paper's Table 1)
// for durationMS of simulated time and reports the outcome.
func (s *System) Serve(totalQPS, durationMS float64) Report {
	gen := trace.NewGenerator(s.cfg.Models, s.cfg.Seed)
	return s.ServeArrivals(gen.Poisson(totalQPS, durationMS))
}

// ServeArrivals replays an explicit arrival trace.
func (s *System) ServeArrivals(arrivals []trace.Arrival) Report {
	res := serving.Run(serving.RunConfig{
		Policy:   s.cfg.Policy,
		Models:   s.cfg.Models,
		Arrivals: arrivals,
		Services: s.services,
		Model:    s.cfg.Predictor,
	})
	return Report{res: res}
}

// Report summarizes a serving run.
type Report struct {
	res serving.Result
}

// NormalizedTail returns the worst per-service 99%-ile latency divided by
// its QoS target (< 1 means all services met their targets at p99).
func (r Report) NormalizedTail() float64 { return r.res.NormalizedTail() }

// ViolationRatio returns the fraction of queries that missed QoS (dropped
// queries count).
func (r Report) ViolationRatio() float64 { return r.res.ViolationRatio() }

// Goodput returns queries completed within QoS per second.
func (r Report) Goodput() float64 { return r.res.Goodput() }

// DropRatio returns the fraction of queries dropped.
func (r Report) DropRatio() float64 { return r.res.DropRatio() }

// Completed returns the number of queries that finished (dropped excluded).
func (r Report) Completed() int { return r.res.Completed() }

// Queries returns the total number of queries emitted.
func (r Report) Queries() int { return len(r.res.Records) }

// TailLatency returns the p-th percentile latency of completed queries of
// one service index (-1 for all).
func (r Report) TailLatency(service int, p float64) float64 { return r.res.TailLatency(service, p) }

// Utilization returns the device's mean SM utilization over the run.
func (r Report) Utilization() float64 { return r.res.Utilization }

// String renders the headline metrics.
func (r Report) String() string {
	return fmt.Sprintf("%s: %d queries, p99/QoS=%.2f, violations=%.1f%%, goodput=%.1f r/s, drops=%.1f%%",
		r.res.Policy, len(r.res.Records), r.NormalizedTail(),
		100*r.ViolationRatio(), r.Goodput(), 100*r.DropRatio())
}

// TrainConfig controls offline predictor training.
type TrainConfig struct {
	// SamplesPerCombo is the instance-based sample count per model
	// combination (paper: 2000 per pair).
	SamplesPerCombo int
	// MaxCoLocated bounds the group sizes sampled (2 = pairwise, up to 4).
	MaxCoLocated int
	// Seed drives sampling and training.
	Seed int64
}

// TrainPredictor profiles operator groups over the given models on the
// simulated device and trains the paper's unified MLP duration model. The
// returned predictor plugs into SystemConfig.Predictor.
func TrainPredictor(models []Model, cfg TrainConfig) (*Predictor, error) {
	if cfg.SamplesPerCombo <= 0 {
		cfg.SamplesPerCombo = 500
	}
	if cfg.MaxCoLocated <= 0 {
		cfg.MaxCoLocated = 2
	}
	if cfg.MaxCoLocated > len(models) {
		cfg.MaxCoLocated = len(models)
	}
	sc := predictor.DefaultSamplerConfig()
	sc.Seed = cfg.Seed
	// Each co-location degree profiles with its own sampler, so the degrees
	// collect concurrently and concatenate in degree order — the sample
	// stream matches the serial loop exactly.
	perK := runner.Map(cfg.MaxCoLocated, 0, func(i int) []predictor.Sample {
		return predictor.Collect(models, i+1, cfg.SamplesPerCombo, sc)
	})
	var samples []predictor.Sample
	for _, ks := range perK {
		samples = append(samples, ks...)
	}
	tc := predictor.DefaultTrainConfig()
	tc.Seed = cfg.Seed
	return predictor.Train(samples, predictor.NewCodec(), tc)
}

// RunExperiment regenerates one of the paper's figures (e.g. "fig14",
// "fig22"; see ExperimentIDs) and renders the tables to w. quick shrinks
// the workload for smoke runs.
func RunExperiment(id string, quick bool, w io.Writer) error {
	opts := experiments.Full()
	if quick {
		opts = experiments.Quick()
	}
	tables, err := experiments.Run(id, opts)
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Render(w)
	}
	return nil
}

// ExperimentIDs lists the regenerable figures.
func ExperimentIDs() []string { return experiments.IDs() }

// LoadPredictor restores a predictor written by (*Predictor).Save — the
// artifact abacus-train persists with -model-out.
func LoadPredictor(r io.Reader) (*Predictor, error) {
	return predictor.Load(r)
}

// WriteCSV emits one row per query of the run for external analysis.
func (r Report) WriteCSV(w io.Writer) error { return r.res.WriteCSV(w) }
