package abacus

import (
	"abacus/internal/scaler"
	"abacus/internal/server"
)

// The online serving gateway wraps the Abacus runtime in a wall-clock event
// loop behind an HTTP front end with predictor-driven admission control (see
// internal/server and internal/realtime). The facade re-exports it so
// embedders can run a gateway without importing internal packages:
//
//	gw, _ := abacus.NewGateway(abacus.GatewayConfig{
//		Models: []abacus.Model{abacus.ResNet152, abacus.InceptionV3},
//	})
//	ln, _ := net.Listen("tcp", ":8080")
//	go gw.ServeListener(ln)
//	defer gw.Shutdown(context.Background())
type (
	// Gateway is the HTTP serving front end around one simulated GPU.
	Gateway = server.Server
	// GatewayConfig configures a Gateway (models, speedup, queue bounds).
	GatewayConfig = server.Config
	// GatewayClient is the Go client for a running Gateway.
	GatewayClient = server.Client
	// InferRequest is the POST /v1/infer body.
	InferRequest = server.InferRequest
	// InferResponse is the /v1/infer reply.
	InferResponse = server.InferResponse
	// AutoscaleConfig tunes the live elastic autoscaler; assign to
	// GatewayConfig.Autoscale to turn the fixed fleet into an elastic one.
	AutoscaleConfig = scaler.Config
)

// NewGateway builds an online serving gateway.
func NewGateway(cfg GatewayConfig) (*Gateway, error) { return server.New(cfg) }

// NewGatewayClient returns a client for the gateway at base, e.g.
// "http://127.0.0.1:8080". A nil httpClient uses a client with no timeout.
func NewGatewayClient(base string) *GatewayClient { return server.NewClient(base, nil) }
