package abacus

import (
	"io"

	"abacus/internal/trace"
	"abacus/internal/workload"
)

// Declarative workload specs (see internal/workload). The facade re-exports
// the spec compiler and the tracev2 persistence layer so embedders can turn
// a JSON/YAML description of offered load — phased rates, heavy-tailed and
// bursty inter-arrival processes, closed-loop client cohorts — into a
// deterministic arrival schedule without importing internal packages:
//
//	spec, _ := abacus.ParseWorkload(data)
//	c, _ := spec.Bind(models, 1)
//	arrivals := c.Materialize() // replayable; byte-identical via tracev2
type (
	// WorkloadSpec is a declarative description of offered load.
	WorkloadSpec = workload.Spec
	// CompiledWorkload is a spec bound to a deployment and seed.
	CompiledWorkload = workload.Compiled
	// WorkloadMeta is the tracev2 header of a materialized workload.
	WorkloadMeta = workload.Meta
	// ThinkSpec shapes a closed-loop client's think-time distribution.
	ThinkSpec = workload.ThinkSpec
	// ArrivalCapture records a live gateway session for replay
	// (GatewayConfig.Capture).
	ArrivalCapture = trace.Capture
	// Arrival is one query arrival: virtual time, service index, input.
	Arrival = trace.Arrival
)

// ParseWorkload decodes and validates a workload spec from JSON or the YAML
// subset (sniffed).
func ParseWorkload(data []byte) (*WorkloadSpec, error) { return workload.Parse(data) }

// NewArrivalCapture returns an empty live-session recorder.
func NewArrivalCapture() *ArrivalCapture { return trace.NewCapture() }

// WriteWorkloadTrace persists an arrival schedule as a checksummed tracev2
// stream; ReadWorkloadTrace re-reads it byte-identically.
func WriteWorkloadTrace(w io.Writer, meta WorkloadMeta, arrivals []Arrival) error {
	return workload.WriteTrace(w, meta, arrivals)
}

// ReadWorkloadTrace reads and verifies a tracev2 stream.
func ReadWorkloadTrace(r io.Reader) (WorkloadMeta, []Arrival, error) {
	return workload.ReadTrace(r)
}

// IsWorkloadTrace reports whether data begins with the tracev2 magic.
func IsWorkloadTrace(data []byte) bool { return workload.IsTraceV2(data) }
