# Developer entry points. `make ci` is the full gate: build, vet, format
# check, and the test suite under the race detector (the concurrent sweep
# harness in internal/runner makes -race load-bearing). CI layers the
# targets into lanes: the fast PR lane runs build+vet+fmt-check+short
# tests, the full lane runs `make ci`, and separate lanes run lint
# (staticcheck) and the benchmarks + chaos scenarios.

GO ?= go
STATICCHECK_VERSION ?= 2025.1

.PHONY: all build vet fmt-check tidy-check lint test test-short test-race bench bench-json bench-predict bench-http bench-sim bench-autoscale chaos trend workload examples ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# On failure, prints the actual diff so a CI log is enough to fix the
# formatting without reproducing locally.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; gofmt -d .; exit 1; \
	fi

# go.mod/go.sum must already be tidy; -diff prints what tidy would change
# and exits nonzero instead of rewriting the files.
tidy-check:
	$(GO) mod tidy -diff

# Uses a staticcheck binary from PATH when present (CI installs one);
# otherwise falls back to `go run`, which needs network access, so lint is
# a separate lane rather than part of `ci`.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The experiments package alone can exceed go test's default 10-minute
# per-package timeout under the race detector on small machines.
test-race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Chaos scenarios double as the gateway benchmark: deterministic QoS
# counters plus a wall-clock figure, uploaded from CI as an artifact.
bench-json:
	$(GO) run ./cmd/abacus-chaos -bench -json -o BENCH_gateway.json

# Prediction hot-path benchmarks (batched MLP forward, span search,
# gateway round) as a machine-readable artifact; allocs/op is deterministic
# and trend-gated tightly, ns/op generously.
bench-predict:
	$(GO) run ./cmd/abacus-predictbench -o BENCH_predict.json

# HTTP ingest saturation benchmark: closed-loop ramp against an in-process
# gateway; the artifact records peak sustained QPS at the goodput floor,
# latency at peak, allocs/request, and the wire-codec component benchmarks.
bench-http:
	$(GO) run ./cmd/abacus-httpbench -o BENCH_http.json

# Simulation hot-path benchmarks: event schedule/fire, heap churn,
# overlapped kernel chains, and a full executor group cycle. Allocation-free
# in steady state by construction (PR 10); the trend gate holds allocs/op
# tightly so the floor cannot quietly erode.
bench-sim:
	$(GO) run ./cmd/abacus-simbench -o BENCH_sim.json

# Elastic-autoscaler benchmark: the diurnal-autoscale scenario distilled
# into the trend artifact abacus-trend gates on — goodput held to an
# absolute 0.98 floor, node-milliseconds (the cost the scaler exists to
# save) gated against growth.
bench-autoscale:
	$(GO) run ./cmd/abacus-chaos -bench -scenario diurnal-autoscale -autoscale-out BENCH_autoscale.json > /dev/null

# Bench-trend check: rebuild both benchmark artifacts at TREND_BASE
# (default origin/main) in a throwaway worktree, then diff against the
# working tree's artifacts. Fails on a dropped scenario or benchmark, a
# goodput drop, p99 growth, a per-service shed spike or admitted drop, or
# hot-path allocs/op growth beyond the abacus-trend tolerances. The predict
# and http gates only engage when the base ref has the matching bench
# command (so they are skipped against pre-artifact history).
TREND_BASE ?= origin/main

trend: bench-json bench-predict bench-http bench-sim bench-autoscale
	@set -e; \
	tmp=$$(mktemp -d); \
	trap 'git worktree remove --force "$$tmp" 2>/dev/null || rm -rf "$$tmp"' EXIT; \
	git worktree add --detach "$$tmp" $(TREND_BASE) >/dev/null; \
	(cd "$$tmp" && $(GO) run ./cmd/abacus-chaos -o BENCH_base.json >/dev/null); \
	mv "$$tmp/BENCH_base.json" BENCH_base.json; \
	predict_flags=""; \
	if [ -d "$$tmp/cmd/abacus-predictbench" ]; then \
		(cd "$$tmp" && $(GO) run ./cmd/abacus-predictbench -o PREDICT_base.json >/dev/null); \
		mv "$$tmp/PREDICT_base.json" PREDICT_base.json; \
		predict_flags="-predict-base PREDICT_base.json -predict-head BENCH_predict.json"; \
	fi; \
	http_flags=""; \
	if [ -d "$$tmp/cmd/abacus-httpbench" ]; then \
		(cd "$$tmp" && $(GO) run ./cmd/abacus-httpbench -o HTTP_base.json >/dev/null); \
		mv "$$tmp/HTTP_base.json" HTTP_base.json; \
		http_flags="-http-base HTTP_base.json -http-head BENCH_http.json -max-http-allocs 300"; \
	fi; \
	sim_flags=""; \
	if [ -d "$$tmp/cmd/abacus-simbench" ]; then \
		(cd "$$tmp" && $(GO) run ./cmd/abacus-simbench -o SIM_base.json >/dev/null); \
		mv "$$tmp/SIM_base.json" SIM_base.json; \
		sim_flags="-sim-base SIM_base.json -sim-head BENCH_sim.json"; \
	fi; \
	autoscale_flags=""; \
	if grep -qs autoscale-out "$$tmp/cmd/abacus-chaos/main.go"; then \
		(cd "$$tmp" && $(GO) run ./cmd/abacus-chaos -scenario diurnal-autoscale -autoscale-out AUTOSCALE_base.json >/dev/null); \
		mv "$$tmp/AUTOSCALE_base.json" AUTOSCALE_base.json; \
		autoscale_flags="-autoscale-base AUTOSCALE_base.json -autoscale-head BENCH_autoscale.json"; \
	fi; \
	$(GO) run ./cmd/abacus-trend -base BENCH_base.json -head BENCH_gateway.json $$predict_flags $$http_flags $$sim_flags $$autoscale_flags

# Run the built-in fault suite and hold the recovery scenarios to their QoS
# floor (the throttle50 baseline intentionally fails it, so the floor is
# asserted on the degraded run only). The cluster scenario additionally pins
# fault-driven migration: one of four nodes throttled to half speed must not
# pull cluster goodput below the same floor.
chaos:
	$(GO) run ./cmd/abacus-chaos
	$(GO) run ./cmd/abacus-chaos -scenario throttle50-degraded -assert-goodput 0.99
	$(GO) run ./cmd/abacus-chaos -scenario cluster-node-throttle -assert-goodput 0.99
	$(GO) run ./cmd/abacus-chaos -scenario flash-crowd -assert-goodput 0.99
	$(GO) run ./cmd/abacus-chaos -scenario heavy-tail -assert-goodput 0.99
	$(GO) run ./cmd/abacus-chaos -scenario diurnal-ramp -assert-goodput 0.98
	$(GO) run ./cmd/abacus-chaos -scenario diurnal-autoscale -assert-goodput 0.98

# Validate every example workload spec: parse, bind against the model zoo,
# materialize, and a tracev2 write→read→write round trip that must be
# byte-identical.
workload:
	$(GO) run ./cmd/abacus-workload -validate examples/workloads/*

# Run the executable examples that double as end-to-end smoke tests; the
# autoscale example drives the live elastic scaler through a full diurnal
# cycle in virtual time, so a lifecycle regression fails `make ci` even
# before the test suite points at it.
examples:
	$(GO) run ./examples/autoscale

ci: build vet fmt-check test-race workload examples
