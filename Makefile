# Developer entry points. `make ci` is the full gate: build, vet, format
# check, and the test suite under the race detector (the concurrent sweep
# harness in internal/runner makes -race load-bearing).

GO ?= go

.PHONY: all build vet fmt-check test test-race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The experiments package alone can exceed go test's default 10-minute
# per-package timeout under the race detector on small machines.
test-race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: build vet fmt-check test-race
