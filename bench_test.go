// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per artifact, backed by internal/experiments in quick mode), a
// set of ablation benchmarks for the design choices DESIGN.md calls out,
// and microbenchmarks of the hot paths (device events, predictions,
// multi-way search).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Figure benchmarks execute one full quick-mode experiment per iteration;
// with the default -benchtime they run a single iteration each.
package abacus_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"abacus"
	"abacus/internal/admit"
	"abacus/internal/core"
	"abacus/internal/dnn"
	"abacus/internal/experiments"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/runner"
	"abacus/internal/sched"
	"abacus/internal/serving"
	"abacus/internal/sim"
	"abacus/internal/trace"
)

// benchExperiment runs one registered experiment in quick mode per
// iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, experiments.Quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
}

func BenchmarkFig03MPSLatencyCDF(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig07Determinism(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig10PredictorAccuracy(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig14PairwiseTail(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15QoSViolation(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16SmallDNNs(b *testing.B)         { benchExperiment(b, "fig16") }
func BenchmarkFig17PeakThroughput(b *testing.B)    { benchExperiment(b, "fig17") }
func BenchmarkFig18NWiseTail(b *testing.B)         { benchExperiment(b, "fig18") }
func BenchmarkFig19NWiseThroughput(b *testing.B)   { benchExperiment(b, "fig19") }
func BenchmarkFig20MIGTail(b *testing.B)           { benchExperiment(b, "fig20") }
func BenchmarkFig21MIGThroughput(b *testing.B)     { benchExperiment(b, "fig21") }
func BenchmarkFig22Cluster(b *testing.B)           { benchExperiment(b, "fig22") }
func BenchmarkFig23MultiwaySearch(b *testing.B)    { benchExperiment(b, "fig23") }
func BenchmarkOverhead(b *testing.B)               { benchExperiment(b, "overhead") }
func BenchmarkAblationDesignChoices(b *testing.B)  { benchExperiment(b, "ablations") }

// BenchmarkAblationPolicies measures one serving run per policy on the hot
// pair, reporting goodput and violation metrics so policy regressions show
// up in bench output.
func BenchmarkAblationPolicies(b *testing.B) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	gen := trace.NewGenerator(models, 1)
	arrivals := gen.Poisson(50, 4000)
	for _, policy := range serving.AllPolicies() {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			var res serving.Result
			for i := 0; i < b.N; i++ {
				res = serving.Run(serving.RunConfig{
					Policy: policy, Models: models, Arrivals: arrivals,
				})
			}
			b.ReportMetric(res.Goodput(), "goodput_r/s")
			b.ReportMetric(100*res.ViolationRatio(), "violation_%")
		})
	}
}

// --- Microbenchmarks of the hot paths ---

// BenchmarkDeviceContendedKernels measures the simulator's event
// throughput with four contending kernel chains resident.
func BenchmarkDeviceContendedKernels(b *testing.B) {
	p := gpusim.A100Profile()
	spec := gpusim.KernelSpec{Name: "k", Work: 0.05, SMFrac: 0.4, MemFrac: 0.3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		dev := gpusim.New(eng, p)
		specs := make([]gpusim.KernelSpec, 64)
		for j := range specs {
			specs[j] = spec
		}
		for c := 0; c < 4; c++ {
			dev.RunChain(specs, nil)
		}
		eng.Run()
	}
}

// BenchmarkGroupMeasure measures one ground-truth operator-group
// simulation — the unit of offline profiling cost.
func BenchmarkGroupMeasure(b *testing.B) {
	p := gpusim.A100Profile()
	m50, m152 := dnn.Get(dnn.ResNet50), dnn.Get(dnn.ResNet152)
	g := predictor.Group{
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: m50.NumOps(), Batch: 16},
		{Model: dnn.ResNet152, OpStart: 100, OpEnd: m152.NumOps(), Batch: 8},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		predictor.Measure(g, p, 0, 0)
	}
}

// BenchmarkPredictorPredict measures one trained-MLP duration prediction —
// the paper reports 0.06 ms per invocation (§7.7).
func BenchmarkPredictorPredict(b *testing.B) {
	cfg := predictor.DefaultSamplerConfig()
	cfg.Runs = 1
	samples := predictor.Collect([]dnn.ModelID{dnn.ResNet50, dnn.VGG16}, 2, 100, cfg)
	tc := predictor.DefaultTrainConfig()
	tc.Epochs = 50
	pred, err := predictor.Train(samples, predictor.NewCodec(), tc)
	if err != nil {
		b.Fatal(err)
	}
	g := samples[0].Group
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pred.Predict(g)
	}
}

// BenchmarkMultiwaySearch measures one full group search with the
// default 4 ways.
func BenchmarkMultiwaySearch(b *testing.B) {
	cfg := predictor.DefaultSamplerConfig()
	cfg.Runs = 1
	samples := predictor.Collect([]dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}, 2, 100, cfg)
	tc := predictor.DefaultTrainConfig()
	tc.Epochs = 50
	pred, err := predictor.Train(samples, predictor.NewCodec(), tc)
	if err != nil {
		b.Fatal(err)
	}
	m152, mInc := dnn.Get(dnn.ResNet152), dnn.Get(dnn.InceptionV3)
	base := predictor.Group{{Model: dnn.ResNet152, OpStart: 0, OpEnd: m152.NumOps(), Batch: 16}}
	entry := predictor.Entry{Model: dnn.InceptionV3, OpStart: 0, Batch: 16}
	budget := pred.Predict(base) * 1.2
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sched.MaxFeasibleSpan(pred, base, entry, mInc.NumOps(), budget, 4)
	}
}

// BenchmarkMaxFeasibleSpan measures one multi-way span search against a
// trained duration model with a two-entry base group — the per-candidate
// unit of work inside every scheduling round. The search scratch is reused
// across iterations, matching how the controller calls it.
func BenchmarkMaxFeasibleSpan(b *testing.B) {
	cfg := predictor.DefaultSamplerConfig()
	cfg.Runs = 1
	samples := predictor.Collect([]dnn.ModelID{dnn.ResNet50, dnn.ResNet152, dnn.InceptionV3}, 2, 100, cfg)
	tc := predictor.DefaultTrainConfig()
	tc.Epochs = 50
	pred, err := predictor.Train(samples, predictor.NewCodec(), tc)
	if err != nil {
		b.Fatal(err)
	}
	m50, m152, mInc := dnn.Get(dnn.ResNet50), dnn.Get(dnn.ResNet152), dnn.Get(dnn.InceptionV3)
	base := predictor.Group{
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: m50.NumOps(), Batch: 8},
		{Model: dnn.ResNet152, OpStart: 40, OpEnd: m152.NumOps(), Batch: 16},
	}
	entry := predictor.Entry{Model: dnn.InceptionV3, OpStart: 0, Batch: 16}
	budget := pred.Predict(base) * 1.2
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sched.MaxFeasibleSpan(pred, base, entry, mInc.NumOps(), budget, 4)
	}
}

// BenchmarkGatewayRound measures the gateway's per-request hot path minus
// HTTP: one admission decision plus one full scheduling round (submit →
// group formation → execution → drain) on the hot pair with a trained
// duration model.
func BenchmarkGatewayRound(b *testing.B) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	cfg := predictor.DefaultSamplerConfig()
	cfg.Runs = 1
	samples := predictor.Collect(models, 2, 100, cfg)
	tc := predictor.DefaultTrainConfig()
	tc.Epochs = 50
	pred, err := predictor.Train(samples, predictor.NewCodec(), tc)
	if err != nil {
		b.Fatal(err)
	}
	profile := gpusim.A100Profile()
	rt, err := core.New(core.Config{Models: models, Model: pred, Profile: profile})
	if err != nil {
		b.Fatal(err)
	}
	adm := admit.New(pred, profile, rt.Services(), 64, 0.02, nil)
	in := dnn.Input{Batch: 8}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svc := i % len(models)
		now := rt.Engine().Now()
		d := adm.Decide(now, svc, in, 0)
		if !d.OK {
			b.Fatalf("iteration %d: admission rejected (%s) with an empty backlog", i, d.Reason)
		}
		adm.Admitted(svc, d.WorkMS)
		rt.Submit(svc, in, now)
		rt.Drain()
		adm.Finish(svc, d.WorkMS)
	}
}

// BenchmarkServeAbacusSecond measures one simulated second of Abacus
// serving on the hot pair with the oracle model.
func BenchmarkServeAbacusSecond(b *testing.B) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	gen := trace.NewGenerator(models, 1)
	arrivals := gen.Poisson(50, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		serving.Run(serving.RunConfig{
			Policy: serving.PolicyAbacus, Models: models, Arrivals: arrivals,
		})
	}
}

// BenchmarkRunnerScaling measures the worker-pool harness on a fixed batch
// of independent serving runs (the unit of every sweep experiment) at
// widths 1, 2, 4, and NumCPU. Sub-benchmark times divided by the
// parallel=1 time give the harness's wall-clock scaling on this machine.
func BenchmarkRunnerScaling(b *testing.B) {
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	gen := trace.NewGenerator(models, 1)
	arrivals := gen.Poisson(50, 1000)
	const jobs = 8
	widths := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		widths = append(widths, n)
	}
	for _, w := range widths {
		w := w
		b.Run(fmt.Sprintf("parallel=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runner.Map(jobs, w, func(j int) serving.Result {
					return serving.Run(serving.RunConfig{
						Policy: serving.PolicyAbacus, Models: models, Arrivals: arrivals,
					})
				})
			}
		})
	}
}

// BenchmarkSystemFacade measures the public API end to end.
func BenchmarkSystemFacade(b *testing.B) {
	sys, err := abacus.NewSystem(abacus.SystemConfig{
		Models: []abacus.Model{abacus.ResNet50, abacus.Bert},
		Policy: abacus.PolicyAbacus,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		sys.Serve(40, 1000)
	}
}
