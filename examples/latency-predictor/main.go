// Latency-predictor walkthrough: profile operator groups on the simulated
// device, train the paper's three candidate duration models, compare their
// accuracy, and query the winner about a custom operator group.
//
//	go run ./examples/latency-predictor
package main

import (
	"fmt"
	"log"

	"abacus"
	"abacus/internal/dnn"
	"abacus/internal/predictor"
)

func main() {
	models := []abacus.Model{abacus.ResNet50, abacus.ResNet152, abacus.Bert}

	// Offline profiling: instance-based sampling of operator groups
	// (paper §5.4), measured on the simulated A100.
	cfg := predictor.DefaultSamplerConfig()
	cfg.Runs = 3
	samples := predictor.Collect(models, 2, 400, cfg)
	fmt.Printf("collected %d pairwise operator-group samples\n", len(samples))

	codec := predictor.NewCodec()
	for _, tech := range []predictor.Technique{
		predictor.TechLinearRegression, predictor.TechSVR, predictor.TechMLP,
	} {
		tc := predictor.TrainConfig{Technique: tech, Seed: 1, LogTarget: tech == predictor.TechMLP}
		_, mape, err := predictor.TrainEval(samples, codec, tc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s held-out MAPE %5.2f%%\n", tech, 100*mape)
	}

	// Train the production model on everything and query it.
	p, err := predictor.Train(samples, codec, predictor.DefaultTrainConfig())
	if err != nil {
		log.Fatal(err)
	}
	res152 := dnn.Get(dnn.ResNet152)
	group := abacus.Group{
		{Model: abacus.ResNet152, OpStart: 0, OpEnd: res152.NumOps(), Batch: 16},
		{Model: abacus.ResNet50, OpStart: 40, OpEnd: 120, Batch: 8},
	}
	predicted := p.Predict(group)
	actual := predictor.Measure(group, cfg.Profile, 0, 0)
	fmt.Printf("\ncustom group: predicted %.2f ms, simulated %.2f ms (%.1f%% error)\n",
		predicted, actual, 100*abs(predicted-actual)/actual)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
