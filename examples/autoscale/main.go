// Live elastic autoscaling: run the diurnal-autoscale scenario — the fig22
// MAF-like trace against a fleet that starts at one node — and watch the
// scaler add nodes into the morning ramp, warm them up on the probe
// trickle, and drain them gracefully as the evening trough arrives. The
// whole day plays out in virtual time, so the example finishes in seconds
// and its numbers are deterministic.
//
// The capacity-planning half (autoscale.BuildPlan + PlanTimeline) answers
// "how many nodes would I need"; this drives the answer live through the
// serving stack: real admission control, real sticky routes remapped off
// draining nodes, real terminal snapshots for retired ones.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"strings"

	"abacus/internal/chaos"
)

func main() {
	sc, ok := chaos.Lookup("diurnal-autoscale")
	if !ok {
		log.Fatal("diurnal-autoscale scenario missing from the built-in suite")
	}
	cfg := *sc.Autoscale
	fmt.Printf("running %s: %.0f s of MAF-like diurnal load, fleet %d..%d nodes,\n",
		sc.Name, sc.MAF.DurationMS/1000, cfg.MinNodes, cfg.MaxNodes)
	fmt.Printf("observe every %.0f ms, %.0f qps per node, %.0f ms warm-up per added node...\n\n",
		cfg.IntervalMS, cfg.CapacityQPS, cfg.WarmupMS)

	rep, err := chaos.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	as := rep.Autoscale

	fmt.Println("node lifetimes (virtual time; # marks the live span):")
	for _, n := range rep.Nodes {
		first, last := 0.0, as.EndMS
		if n.Window != nil {
			first, last = n.Window.FirstMS, n.Window.LastMS
		}
		role := "founder"
		if first > 0 {
			role = fmt.Sprintf("added @%.0fs", first/1000)
		}
		if last < as.EndMS {
			role += fmt.Sprintf(", retired @%.0fs", last/1000)
		}
		fmt.Printf("  node %d  |%s|  %-26s routed %d, good %d\n",
			n.Node, lifetimeBar(first, last, as.EndMS, 48), role, n.Routed, n.Good)
	}

	fmt.Printf("\nscale actions: %d out, %d in (held: hysteresis %d, cooldown %d, max %d)\n",
		as.ScaleOuts, as.ScaleIns, as.HeldHysteresis, as.HeldCooldown, as.HeldMaxNodes)
	fmt.Printf("fleet: peak %d nodes, final %d, %d control ticks\n", as.PeakNodes, as.FinalNodes, as.Ticks)
	fmt.Printf("goodput: %.4f (%d good of %d sent)\n", rep.Goodput, rep.Good, rep.Sent)
	fmt.Printf("node-time: %.3g node-ms elastic vs %.3g static at peak — %.1f%% saved\n",
		as.NodeMS, as.StaticPeakNodeMS, 100*as.SavedFrac)
}

// lifetimeBar renders [first, last] as a span of '#' within [0, end].
func lifetimeBar(first, last, end float64, width int) string {
	bar := []byte(strings.Repeat(" ", width))
	lo := int(first / end * float64(width))
	hi := int(last / end * float64(width))
	if hi >= width {
		hi = width - 1
	}
	for i := lo; i <= hi; i++ {
		bar[i] = '#'
	}
	return string(bar)
}
