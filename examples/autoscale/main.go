// Autoscaling example (paper §7.9 future work): build an Abacus-aware
// capacity plan — which services to co-locate per GPU and how much goodput
// one node sustains — then drive fleet-sizing decisions from a bursty
// diurnal load.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"
	"strings"

	"abacus/internal/autoscale"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/trace"
)

func main() {
	models := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}

	fmt.Println("building the co-location plan (affinity analysis + capacity probe)...")
	plan := autoscale.BuildPlan(models, 2, gpusim.A100Profile(), 1)
	for i, g := range plan.Groups {
		names := make([]string, len(g))
		for j, m := range g {
			names[j] = m.String()
		}
		fmt.Printf("  GPU %d serves: %s\n", i+1, strings.Join(names, " + "))
	}
	fmt.Printf("  estimated node capacity: %.0f queries/s\n\n", plan.CapacityQPS)

	// Per-minute offered load from a 15-minute bursty diurnal trace.
	gen := trace.NewGenerator(models, 2)
	arrivals := gen.MAF(trace.DefaultMAFConfig(220, 15*60_000, 2))
	offered := make([]float64, 15)
	for _, a := range arrivals {
		if b := int(a.Time / 60_000); b < len(offered) {
			offered[b] += 1.0 / 60
		}
	}

	planner, err := autoscale.NewPlanner(autoscale.PlannerConfig{Plan: plan})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minute  offered  forecast  nodes  decision    utilization")
	for i, pt := range autoscale.PlanTimeline(planner, offered) {
		bar := strings.Repeat("#", pt.Nodes)
		fmt.Printf("%6d  %7.0f  %8.0f  %5d  %-10s  %5.0f%%  %s\n",
			i, pt.OfferedQPS, pt.Forecast, pt.Nodes, pt.Decision, 100*pt.Utilization, bar)
	}
}
