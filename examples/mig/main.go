// MIG partitioning example: serve four services either on isolated MIG
// instances or co-located with Abacus on one larger instance (paper §7.5).
//
//	go run ./examples/mig
package main

import (
	"fmt"
	"log"

	"abacus/internal/core"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/sched"
	"abacus/internal/sim"
	"abacus/internal/stats"
	"abacus/internal/trace"
)

func main() {
	models := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}
	gen := trace.NewGenerator(models, 3)
	arrivals := gen.Poisson(50, 8_000)

	fmt.Println("case 1: full isolation — each model on its own MIG 1g.5gb instance")
	runCase(models, arrivals, [][]int{{0}, {1}, {2}, {3}}, 1.0/7, 1.0/8)

	fmt.Println("\ncase 2: no isolation — all four co-located on one MIG 4g.20gb via Abacus")
	runCase(models, arrivals, [][]int{{0, 1, 2, 3}}, 4.0/7, 1.0/2)

	fmt.Println("\nFull isolation starves the heavy models (QoS targets assume full-GPU")
	fmt.Println("performance); Abacus on the large instance meets them by sharing.")
}

// runCase deploys service groups onto equally sized MIG partitions and
// reports per-service p99 against QoS.
func runCase(models []dnn.ModelID, arrivals []trace.Arrival, groups [][]int, smFrac, memFrac float64) {
	p := gpusim.A100Profile()
	eng := sim.NewEngine()
	full := gpusim.New(eng, p)
	services := sched.Services(models, 2, p) // QoS from the full GPU

	latencies := make(map[int][]float64)
	drops := make(map[int]int)
	sink := func(q *sched.Query) {
		if q.Dropped {
			drops[q.Service.ID]++
			return
		}
		latencies[q.Service.ID] = append(latencies[q.Service.ID], q.Latency())
	}

	// One Abacus runtime per instance; route arrivals statically.
	runtimeOf := map[int]*core.Runtime{}
	for _, group := range groups {
		groupModels := make([]dnn.ModelID, len(group))
		for i, svc := range group {
			groupModels[i] = models[svc]
		}
		rt, err := core.New(core.Config{
			Models:   groupModels,
			Device:   full.Partition(smFrac, memFrac),
			OnResult: sink,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Align the runtime's service identities with the global index so
		// the sink buckets correctly.
		for i, svc := range group {
			rt.Services()[i].ID = svc
			rt.Services()[i].QoS = services[svc].QoS
		}
		for _, svc := range group {
			runtimeOf[svc] = rt
		}
	}

	for _, a := range arrivals {
		rt := runtimeOf[a.Service]
		local := 0
		for i, s := range rt.Services() {
			if s.ID == a.Service {
				local = i
			}
		}
		rt.Submit(local, a.Input, a.Time)
	}
	eng.Run()

	for svc, s := range services {
		lats := latencies[svc]
		if len(lats) == 0 {
			fmt.Printf("  %-8v QoS %5.1f ms: no completions (%d dropped)\n", s.Model, s.QoS, drops[svc])
			continue
		}
		fmt.Printf("  %-8v QoS %5.1f ms: p99 %6.1f ms (%d queries, %d dropped)\n",
			s.Model, s.QoS, stats.Percentile(lats, 99), len(lats), drops[svc])
	}
}
