// Pairwise policy comparison: sweep several co-location pairs across all
// four schedulers at the paper's 50 QPS operating point and print a
// Figure 14/15-style table.
//
//	go run ./examples/pairwise
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"abacus"
)

func main() {
	pairs := [][]abacus.Model{
		{abacus.ResNet50, abacus.ResNet152},
		{abacus.ResNet152, abacus.InceptionV3},
		{abacus.ResNet101, abacus.Bert},
		{abacus.VGG16, abacus.VGG19},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "pair\tpolicy\tp99/QoS\tviolations\tgoodput(r/s)")
	for _, pair := range pairs {
		for _, policy := range abacus.Policies() {
			sys, err := abacus.NewSystem(abacus.SystemConfig{
				Models: pair,
				Policy: policy,
				Seed:   7,
			})
			if err != nil {
				log.Fatal(err)
			}
			r := sys.Serve(50, 8_000)
			fmt.Fprintf(w, "(%v,%v)\t%v\t%.2f\t%.1f%%\t%.1f\n",
				pair[0], pair[1], policy,
				r.NormalizedTail(), 100*r.ViolationRatio(), r.Goodput())
		}
	}
	w.Flush()
	fmt.Println("\nNote how (VGG16,VGG19) — whose kernels saturate the device — shows")
	fmt.Println("little difference between policies, exactly as the paper reports.")
}
