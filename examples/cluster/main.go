// Cluster serving example: replay a bursty MAF-like trace on a small
// simulated GPU cluster and compare node-level Abacus under Kubernetes-style
// routing against a Clockwork-style central scheduler (paper §7.6).
//
//	go run ./examples/cluster
package main

import (
	"fmt"

	"abacus/internal/cluster"
	"abacus/internal/dnn"
	"abacus/internal/trace"
)

func main() {
	models := []dnn.ModelID{dnn.ResNet101, dnn.ResNet152, dnn.VGG19, dnn.Bert}
	gen := trace.NewGenerator(models, 11)
	arrivals := gen.MAF(trace.DefaultMAFConfig(150, 2*60_000, 11)) // 2 minutes

	fmt.Printf("replaying %d arrivals on a 2-node x 2-GPU cluster, QoS 100 ms\n\n", len(arrivals))
	for _, policy := range []cluster.Policy{cluster.KubeAbacus, cluster.Clockwork} {
		res := cluster.Run(cluster.Config{
			Policy:      policy,
			Nodes:       2,
			GPUsPerNode: 2,
			Models:      models,
			QoS:         100,
			Arrivals:    arrivals,
		})
		fmt.Printf("%-10s completed=%5d dropped=%4d p99=%5.1f ms avg=%5.1f ms\n",
			policy, res.Completed, res.Dropped, res.P99Latency, res.AvgLatency)
	}
	fmt.Println("\nAbacus absorbs the bursts by overlapping operators on every GPU;")
	fmt.Println("Clockwork must drop queries its sequential GPUs cannot fit.")
}
