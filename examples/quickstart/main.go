// Quickstart: co-locate two DNN services on one simulated GPU and compare
// Abacus's deterministic operator overlap against sequential FCFS.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"abacus"
)

func main() {
	models := []abacus.Model{abacus.ResNet152, abacus.InceptionV3}

	for _, policy := range []abacus.Policy{abacus.PolicyFCFS, abacus.PolicyAbacus} {
		sys, err := abacus.NewSystem(abacus.SystemConfig{
			Models: models,
			Policy: policy,
			Seed:   42,
		})
		if err != nil {
			log.Fatal(err)
		}
		// 50 queries per second aggregated over both services, for 10
		// simulated seconds, batch sizes randomized per the paper's Table 1.
		report := sys.Serve(50, 10_000)
		fmt.Println(report)
	}

	fmt.Println()
	fmt.Println("Abacus should show a lower p99/QoS ratio, fewer violations, and")
	fmt.Println("equal-or-better goodput: overlapped ResNet/Inception operators")
	fmt.Println("waste far less of the GPU than sequential execution.")
}
