package abacus_test

import (
	"bytes"
	"strings"
	"testing"

	"abacus"
)

func TestNewSystemValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  abacus.SystemConfig
		ok   bool
	}{
		{"valid-pair", abacus.SystemConfig{Models: []abacus.Model{abacus.ResNet50, abacus.Bert}}, true},
		{"valid-quad", abacus.SystemConfig{Models: []abacus.Model{abacus.ResNet101, abacus.ResNet152, abacus.VGG19, abacus.Bert}}, true},
		{"empty", abacus.SystemConfig{}, false},
		{"too-many", abacus.SystemConfig{Models: []abacus.Model{0, 1, 2, 3, 4}}, false},
		{"bad-model", abacus.SystemConfig{Models: []abacus.Model{abacus.Model(99)}}, false},
		{"bad-qos", abacus.SystemConfig{Models: []abacus.Model{abacus.ResNet50}, QoSFactor: 0.5}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := abacus.NewSystem(c.cfg)
			if (err == nil) != c.ok {
				t.Errorf("NewSystem error = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestSystemServeDeterministic(t *testing.T) {
	mk := func() abacus.Report {
		sys, err := abacus.NewSystem(abacus.SystemConfig{
			Models: []abacus.Model{abacus.ResNet50, abacus.InceptionV3},
			Policy: abacus.PolicyAbacus,
			Seed:   5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Serve(40, 3000)
	}
	a, b := mk(), mk()
	if a.String() != b.String() {
		t.Errorf("non-deterministic reports:\n%s\n%s", a, b)
	}
}

func TestSystemQoSTargets(t *testing.T) {
	sys, err := abacus.NewSystem(abacus.SystemConfig{
		Models: []abacus.Model{abacus.ResNet152, abacus.Bert},
	})
	if err != nil {
		t.Fatal(err)
	}
	targets := sys.QoSTargets()
	if len(targets) != 2 {
		t.Fatalf("got %d targets", len(targets))
	}
	if targets[0] <= targets[1] {
		t.Errorf("Res152 QoS %v should exceed Bert QoS %v", targets[0], targets[1])
	}
}

func TestSystemAbacusVsFCFS(t *testing.T) {
	run := func(p abacus.Policy) abacus.Report {
		sys, err := abacus.NewSystem(abacus.SystemConfig{
			Models: []abacus.Model{abacus.ResNet152, abacus.InceptionV3},
			Policy: p,
			Seed:   9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Serve(50, 5000)
	}
	ab, fcfs := run(abacus.PolicyAbacus), run(abacus.PolicyFCFS)
	if ab.ViolationRatio() > fcfs.ViolationRatio()+0.01 {
		t.Errorf("Abacus violations %.3f worse than FCFS %.3f", ab.ViolationRatio(), fcfs.ViolationRatio())
	}
	if ab.Goodput() < fcfs.Goodput()*0.98 {
		t.Errorf("Abacus goodput %.1f below FCFS %.1f", ab.Goodput(), fcfs.Goodput())
	}
}

func TestTrainPredictorIntegratesWithSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	models := []abacus.Model{abacus.ResNet50, abacus.InceptionV3}
	p, err := abacus.TrainPredictor(models, abacus.TrainConfig{SamplesPerCombo: 150, MaxCoLocated: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := abacus.NewSystem(abacus.SystemConfig{
		Models:    models,
		Policy:    abacus.PolicyAbacus,
		Predictor: p,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	report := sys.Serve(40, 4000)
	if report.Queries() == 0 {
		t.Fatal("no queries served")
	}
	if report.ViolationRatio() > 0.2 {
		t.Errorf("trained-predictor run violation ratio %.3f implausibly high", report.ViolationRatio())
	}
}

func TestModelByName(t *testing.T) {
	m, err := abacus.ModelByName("Res152")
	if err != nil || m != abacus.ResNet152 {
		t.Errorf("ModelByName(Res152) = %v, %v", m, err)
	}
	if _, err := abacus.ModelByName("GPT7"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestModelsAndPolicies(t *testing.T) {
	if len(abacus.Models()) != 7 {
		t.Errorf("Models() has %d entries, want 7", len(abacus.Models()))
	}
	if len(abacus.Policies()) != 4 {
		t.Errorf("Policies() has %d entries, want 4", len(abacus.Policies()))
	}
}

func TestOracleIsUsable(t *testing.T) {
	m := abacus.Oracle()
	res152 := 30 // arbitrary early span
	lat := m.Predict(abacus.Group{{Model: abacus.ResNet152, OpStart: 0, OpEnd: res152, Batch: 8}})
	if lat <= 0 {
		t.Errorf("oracle latency %v", lat)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := abacus.RunExperiment("nope", true, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := abacus.ExperimentIDs()
	if len(ids) < 14 {
		t.Errorf("only %d experiment ids", len(ids))
	}
	joined := strings.Join(ids, ",")
	for _, want := range []string{"fig3", "fig14", "fig22", "overhead", "ablations"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing experiment %q in %v", want, ids)
		}
	}
}

func TestPredictorPersistenceViaFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	models := []abacus.Model{abacus.ResNet50, abacus.VGG16}
	p, err := abacus.TrainPredictor(models, abacus.TrainConfig{SamplesPerCombo: 80, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := abacus.LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := abacus.Group{{Model: abacus.ResNet50, OpStart: 0, OpEnd: 50, Batch: 8}}
	if loaded.Predict(g) != p.Predict(g) {
		t.Error("loaded predictor disagrees with the original")
	}
}

func TestNewSystemRejectsDuplicateModels(t *testing.T) {
	_, err := abacus.NewSystem(abacus.SystemConfig{
		Models: []abacus.Model{abacus.ResNet50, abacus.ResNet50},
	})
	if err == nil {
		t.Error("duplicate model deployment accepted")
	}
}
