// Command abacus-simbench runs the simulation hot-path microbenchmarks —
// event schedule/fire, event heap churn, overlapped kernel chains on a
// device, and a full executor group cycle — via testing.Benchmark and
// writes the results as BENCH_sim.json. These paths run under every
// serving decision, so the bench lane uploads the artifact next to
// BENCH_http.json and abacus-trend gates it: allocs/op tightly (the hot
// path is allocation-free in steady state and must stay that way), ns/op
// generously.
//
// Usage:
//
//	abacus-simbench -o BENCH_sim.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"abacus/internal/chaos"
	"abacus/internal/cli"
	"abacus/internal/dnn"
	"abacus/internal/executor"
	"abacus/internal/gpusim"
	"abacus/internal/predictor"
	"abacus/internal/sim"
)

var fail = cli.Failer("abacus-simbench")

func main() {
	outFile := flag.String("o", "BENCH_sim.json", "artifact output path (empty: stdout table only)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	wallStart := time.Now()
	var benches []chaos.SimBench
	for _, bm := range hotPathBenchmarks() {
		res := testing.Benchmark(bm.fn)
		benches = append(benches, chaos.SimBench{
			Name:        bm.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
		})
		fmt.Printf("%-32s %10d ns/op %8d B/op %6d allocs/op\n",
			bm.name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	}

	if *outFile == "" {
		return
	}
	art := chaos.SimArtifact{
		WallSeconds: time.Since(wallStart).Seconds(),
		Benchmarks:  benches,
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// hotPathBenchmarks mirrors the hot-path benchmarks in the sim and gpusim
// test suites (same setups), packaged for testing.Benchmark so the bench
// lane can emit them as a machine-readable artifact.
func hotPathBenchmarks() []namedBench {
	var out []namedBench

	// Steady-state schedule → fire on an otherwise empty engine: the cost
	// of one pooled event round trip.
	out = append(out, namedBench{
		name: "BenchmarkEngineSchedule",
		fn: func(b *testing.B) {
			eng := sim.NewEngine()
			tick := func(any) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ScheduleArg(1, tick, nil)
				eng.Step()
			}
		},
	})

	// Schedule → fire against 1024 standing events: heap sift cost at the
	// pending-set depth a busy gateway sustains.
	out = append(out, namedBench{
		name: "BenchmarkEngineHeapChurn",
		fn: func(b *testing.B) {
			eng := sim.NewEngine()
			tick := func(any) {}
			for i := 0; i < 1024; i++ {
				eng.ScheduleArg(1e6+float64(i), tick, nil)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.ScheduleArg(1, tick, nil)
				eng.Step()
			}
		},
	})

	// Two kernel chains contending on one device, drained to completion:
	// launch, max-min re-rating, completion, and pooled recycling.
	out = append(out, namedBench{
		name: "BenchmarkDeviceOverlap",
		fn: func(b *testing.B) {
			eng := sim.NewEngine()
			dev := gpusim.New(eng, gpusim.A100Profile())
			chainA := []gpusim.KernelSpec{
				{Name: "a0", Work: 1.0, SMFrac: 0.8, MemFrac: 0.5},
				{Name: "a1", Work: 0.5, SMFrac: 0.5, MemFrac: 0.2},
				{Name: "a2", Work: 0.8, SMFrac: 0.9, MemFrac: 0.7},
			}
			chainB := []gpusim.KernelSpec{
				{Name: "b0", Work: 0.7, SMFrac: 0.9, MemFrac: 0.8},
				{Name: "b1", Work: 1.2, SMFrac: 0.4, MemFrac: 0.3},
			}
			done := func(any) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.RunChainArg(chainA, done, nil)
				dev.RunChainArg(chainB, done, nil)
				eng.Run()
			}
		},
	})

	// A full executor group cycle on the hot pair: spec materialization
	// from the cost model, two overlapped spans, synchronization.
	out = append(out, namedBench{
		name: "BenchmarkExecutorGroup",
		fn: func(b *testing.B) {
			eng := sim.NewEngine()
			dev := gpusim.New(eng, gpusim.A100Profile())
			exec := executor.New(dev, 0.05)
			g := predictor.Group{
				{Model: dnn.ResNet152, OpStart: 0, OpEnd: 40, Batch: 8},
				{Model: dnn.InceptionV3, OpStart: 0, OpEnd: 30, Batch: 8},
			}
			done := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				exec.Execute(g, done)
				eng.Run()
			}
		},
	})

	return out
}
