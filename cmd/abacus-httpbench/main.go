// Command abacus-httpbench measures the gateway ingest path and writes
// BENCH_http.json. Two parts: the wire-codec component benchmarks (decode,
// encode, end-to-end handler) via testing.Benchmark, and a closed-loop
// saturation ramp — worker counts from -ramp hammer an in-process unpaced
// gateway back to back, and the artifact records the peak sustained QPS
// among steps whose goodput stays at or above -qps-floor, latency
// percentiles at that peak, and the end-to-end allocations per request
// (runtime.MemStats mallocs delta). CI uploads the artifact next to
// BENCH_gateway.json and BENCH_predict.json; abacus-trend gates peak-QPS
// collapse generously and allocs growth tightly.
//
// Usage:
//
//	abacus-httpbench -o BENCH_http.json -qps-floor 0.95 -ramp 1,2,4,8,16,32,64
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"abacus/internal/chaos"
	"abacus/internal/cli"
	"abacus/internal/dnn"
	"abacus/internal/realtime"
	"abacus/internal/server"
	"abacus/internal/stats"
)

var fail = cli.Failer("abacus-httpbench")

const inferBody = `{"model":"Res50","batch":4}`

func main() {
	outFile := flag.String("o", "BENCH_http.json", "artifact output path (empty: stdout table only)")
	floor := flag.Float64("qps-floor", 0.95, "goodput a ramp step must sustain for its QPS to count")
	ramp := flag.String("ramp", "1,2,4,8,16,32,64", "comma-separated closed-loop worker counts")
	stepRequests := flag.Int("step-requests", 5000, "requests per ramp step")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}
	workersRamp, err := parseRamp(*ramp)
	if err != nil {
		fail(err)
	}

	wallStart := time.Now()
	var benches []chaos.HTTPBench
	for _, bm := range codecBenchmarks() {
		res := testing.Benchmark(bm.fn)
		benches = append(benches, chaos.HTTPBench{
			Name:        bm.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
		})
		fmt.Printf("%-24s %10d ns/op %8d B/op %6d allocs/op\n",
			bm.name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	}

	art := saturate(workersRamp, *stepRequests, *floor)
	art.Benchmarks = benches
	art.WallSeconds = time.Since(wallStart).Seconds()
	fmt.Printf("peak %.0f qps @ %d workers (goodput floor %.2f): p50 %.3f ms, p99 %.3f ms, %.1f allocs/request\n",
		art.PeakQPS, art.PeakConcurrency, art.GoodputFloor, art.P50MS, art.P99MS, art.AllocsPerRequest)

	if *outFile == "" {
		return
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
}

func parseRamp(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad ramp step %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty ramp")
	}
	return out, nil
}

func newGateway() *server.Server {
	s, err := server.New(server.Config{
		Models:  []dnn.ModelID{dnn.ResNet50, dnn.InceptionV3},
		Speedup: realtime.Unpaced,
	})
	if err != nil {
		fail(err)
	}
	s.Start()
	return s
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// codecBenchmarks measures the ingest components in isolation: the wire
// decode, the wire encode, and the full handler round trip (which adds
// routing, the admission mailbox, and completion wait on top).
func codecBenchmarks() []namedBench {
	var out []namedBench

	out = append(out, namedBench{
		name: "InferDecode",
		fn: func(b *testing.B) {
			body := []byte(inferBody)
			var w server.WireRequest
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := w.Parse(body); err != nil {
					fail(err)
				}
			}
		},
	})

	out = append(out, namedBench{
		name: "InferEncode",
		fn: func(b *testing.B) {
			resp := server.InferResponse{Model: "Res50", Batch: 4, Accepted: true,
				ArrivalMS: 12.25, FinishMS: 31.5, LatencyMS: 19.25, DeadlineMS: 40, PredictedMS: 18.7}
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = server.AppendInferResponse(buf[:0], &resp)
			}
		},
	})

	gw := newGateway()
	h := gw.Handler()
	out = append(out, namedBench{
		name: "InferHandler",
		fn: func(b *testing.B) {
			c := newConn(h)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if code := c.roundTrip(); code != http.StatusOK {
					fail(fmt.Errorf("iteration %d: HTTP %d: %s", i, code, c.w.buf))
				}
			}
		},
	})
	return out
}

// respWriter is a reusable in-process http.ResponseWriter: the response
// body accumulates in a scratch buffer the driver inspects without
// allocating per request.
type respWriter struct {
	h    http.Header
	code int
	buf  []byte
}

func (w *respWriter) Header() http.Header { return w.h }

func (w *respWriter) WriteHeader(code int) { w.code = code }

func (w *respWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *respWriter) reset() {
	w.code = http.StatusOK
	w.buf = w.buf[:0]
}

// conn is one closed-loop requester: a reusable request whose body reader
// rewinds per round trip, so the driver itself adds almost nothing to the
// per-request allocation count it is measuring.
type conn struct {
	h    http.Handler
	req  *http.Request
	body *bytes.Reader
	w    *respWriter
}

func newConn(h http.Handler) *conn {
	body := bytes.NewReader([]byte(inferBody))
	req := httptest.NewRequest(http.MethodPost, "/v1/infer", body)
	return &conn{h: h, req: req, body: body,
		w: &respWriter{h: make(http.Header, 4), code: http.StatusOK}}
}

func (c *conn) roundTrip() int {
	c.body.Seek(0, 0)
	c.req.ContentLength = int64(c.body.Len())
	c.w.reset()
	c.h.ServeHTTP(c.w, c.req)
	return c.w.code
}

var violatedTag = []byte(`"violated":true`)

// saturate runs the closed-loop ramp and distills the artifact headline:
// peak sustained QPS among steps at or above the goodput floor, latency
// percentiles at that peak, and the mallocs delta per request there.
func saturate(ramp []int, stepRequests int, floor float64) chaos.HTTPArtifact {
	if stepRequests < 100 {
		stepRequests = 100
	}
	gw := newGateway()
	defer gw.Drain()
	h := gw.Handler()

	// Warm the pools, the predictor memo, and the admission caches so the
	// first ramp step is not measuring first-touch growth.
	warm := newConn(h)
	for i := 0; i < 300; i++ {
		warm.roundTrip()
	}

	art := chaos.HTTPArtifact{GoodputFloor: floor}
	for _, workers := range ramp {
		step := runStep(h, workers, stepRequests)
		art.Steps = append(art.Steps, step.HTTPStep)
		fmt.Printf("ramp %3d workers: %9.0f qps, goodput %.3f, p50 %.3f ms, p99 %.3f ms, %.1f allocs/req\n",
			step.Concurrency, step.QPS, step.Goodput, step.P50MS, step.P99MS, step.allocsPerReq)
		if step.Goodput >= floor && step.QPS > art.PeakQPS {
			art.PeakQPS = step.QPS
			art.PeakConcurrency = step.Concurrency
			art.P50MS = step.P50MS
			art.P99MS = step.P99MS
			art.AllocsPerRequest = step.allocsPerReq
		}
	}
	if art.PeakQPS == 0 {
		// No step held the floor: report the first step so the artifact
		// still carries a comparable figure, and say so.
		first := art.Steps[0]
		art.PeakQPS = first.QPS
		art.PeakConcurrency = first.Concurrency
		art.P50MS = first.P50MS
		art.P99MS = first.P99MS
		fmt.Printf("warning: no ramp step sustained goodput >= %.2f; reporting the %d-worker step\n",
			floor, first.Concurrency)
	}
	return art
}

type stepResult struct {
	chaos.HTTPStep
	allocsPerReq float64
}

// runStep drives total requests through workers closed-loop requesters and
// measures throughput, goodput (HTTP 200 within deadline over all sent),
// wall latency percentiles, and allocations per request.
func runStep(h http.Handler, workers, total int) stepResult {
	perWorker := total / workers
	if perWorker == 0 {
		perWorker = 1
	}
	conns := make([]*conn, workers)
	lats := make([][]float64, workers)
	good := make([]int, workers)
	for i := range conns {
		conns[i] = newConn(h)
		lats[i] = make([]float64, 0, perWorker)
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := conns[i]
			for n := 0; n < perWorker; n++ {
				t0 := time.Now()
				code := c.roundTrip()
				lats[i] = append(lats[i], float64(time.Since(t0))/float64(time.Millisecond))
				if code == http.StatusOK && !bytes.Contains(c.w.buf, violatedTag) {
					good[i]++
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	sent := perWorker * workers
	var all []float64
	goodTotal := 0
	for i := range lats {
		all = append(all, lats[i]...)
		goodTotal += good[i]
	}
	ps := stats.Percentiles(all, 50, 99)
	return stepResult{
		HTTPStep: chaos.HTTPStep{
			Concurrency: workers,
			QPS:         float64(sent) / elapsed.Seconds(),
			Goodput:     float64(goodTotal) / float64(sent),
			P50MS:       ps[0],
			P99MS:       ps[1],
		},
		allocsPerReq: float64(ms1.Mallocs-ms0.Mallocs) / float64(sent),
	}
}
