// Command abacus-workload compiles, inspects, and materializes declarative
// workload specs (internal/workload).
//
// Usage:
//
//	abacus-workload -validate examples/workloads/*.json   # parse+bind+round-trip
//	abacus-workload -spec flash-crowd.json -summary       # offered-load digest
//	abacus-workload -spec flash-crowd.json -o flash.trace # materialize tracev2
//	abacus-workload -check flash.trace                    # verify a tracev2 file
//
// The deployment each spec binds against comes from -models, widened and
// overridden by the spec's own pinned model names, so specs that say what
// they serve validate with no extra flags.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"abacus/internal/cli"
	"abacus/internal/dnn"
	"abacus/internal/workload"
)

var fail = cli.Failer("abacus-workload")

func main() {
	validate := flag.Bool("validate", false, "validate the spec files given as arguments: parse, bind, materialize, tracev2 round-trip")
	specFile := flag.String("spec", "", "workload spec file (JSON or YAML) to summarize or materialize")
	summary := flag.Bool("summary", false, "print the per-service offered-load digest for -spec")
	outFile := flag.String("o", "", "materialize -spec and write the tracev2 file here")
	checkFile := flag.String("check", "", "verify a tracev2 file's checksum and row invariants")
	modelsFlag := flag.String("models", "Res152,IncepV3", "deployment model names; specs widen and override this with their pinned models")
	seed := flag.Int64("seed", 1, "seed used when the spec leaves its own seed 0")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	switch {
	case *validate:
		if flag.NArg() == 0 {
			fail(fmt.Errorf("-validate needs spec files as arguments"))
		}
		bad := false
		for _, path := range flag.Args() {
			if err := validateSpec(path, *modelsFlag, *seed); err != nil {
				fmt.Fprintf(os.Stderr, "abacus-workload: %s: %v\n", path, err)
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
	case *checkFile != "":
		f, err := os.Open(*checkFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		meta, arrivals, err := workload.ReadTrace(f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: ok — %q seed %d, %d arrivals over %s ms across %d services\n",
			*checkFile, meta.Name, meta.Seed, len(arrivals), fmtF(meta.DurationMS), meta.Services)
	case *specFile != "":
		c, err := compileFile(*specFile, *modelsFlag, *seed)
		if err != nil {
			fail(err)
		}
		if *summary || *outFile == "" {
			printSummary(c)
		}
		if *outFile != "" {
			arrivals := c.Materialize()
			meta := workload.Meta{
				Name: c.Spec.Name, Seed: c.Seed,
				DurationMS: c.Spec.DurationMS, Services: len(c.Models),
			}
			f, err := os.Create(*outFile)
			if err != nil {
				fail(err)
			}
			if err := workload.WriteTrace(f, meta, arrivals); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("%s: %d arrivals\n", *outFile, len(arrivals))
		}
	default:
		fail(fmt.Errorf("nothing to do: pass -validate, -spec, or -check (see -h)"))
	}
}

// compileFile parses a spec file and binds it against the deployment implied
// by -models plus the spec's own model pins.
func compileFile(path, modelsFlag string, seed int64) (*workload.Compiled, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	spec, err := workload.Parse(data)
	if err != nil {
		return nil, err
	}
	models, err := deployment(spec, modelsFlag)
	if err != nil {
		return nil, err
	}
	return spec.Bind(models, seed)
}

// deployment widens the -models list to cover every service index the spec
// references and overrides entries with the spec's pinned model names.
func deployment(spec *workload.Spec, modelsFlag string) ([]dnn.ModelID, error) {
	models, err := cli.ParseModels(modelsFlag)
	if err != nil {
		return nil, err
	}
	type ref struct {
		svc  int
		name string
	}
	var refs []ref
	for _, sv := range spec.Services {
		refs = append(refs, ref{sv.Service, sv.Model})
	}
	for _, co := range spec.Cohorts {
		refs = append(refs, ref{co.Service, co.Model})
	}
	for _, r := range refs {
		for r.svc >= len(models) {
			models = append(models, models[len(models)%2]) // pad; pins below overwrite
		}
		if r.name != "" {
			id, err := dnn.ModelIDByName(r.name)
			if err != nil {
				return nil, err
			}
			models[r.svc] = id
		}
	}
	return models, nil
}

// validateSpec runs the full pipeline on one file: parse, bind, materialize,
// and a tracev2 write→read→write round trip that must be byte-identical.
func validateSpec(path, modelsFlag string, seed int64) error {
	c, err := compileFile(path, modelsFlag, seed)
	if err != nil {
		return err
	}
	arrivals := c.Materialize()
	meta := workload.Meta{
		Name: c.Spec.Name, Seed: c.Seed,
		DurationMS: c.Spec.DurationMS, Services: len(c.Models),
	}
	var first bytes.Buffer
	if err := workload.WriteTrace(&first, meta, arrivals); err != nil {
		return fmt.Errorf("tracev2 write: %w", err)
	}
	meta2, arrivals2, err := workload.ReadTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		return fmt.Errorf("tracev2 read-back: %w", err)
	}
	var second bytes.Buffer
	if err := workload.WriteTrace(&second, meta2, arrivals2); err != nil {
		return fmt.Errorf("tracev2 re-write: %w", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		return fmt.Errorf("tracev2 round trip is not byte-identical")
	}
	mean := float64(len(arrivals)) / (c.Spec.DurationMS / 1000)
	fmt.Printf("%s: ok — %d arrivals, mean %s qps, tracev2 round-trip clean\n",
		path, len(arrivals), fmtF(mean))
	return nil
}

func printSummary(c *workload.Compiled) {
	fmt.Printf("workload %q seed %d, %s ms\n", c.Spec.Name, c.Seed, fmtF(c.Spec.DurationMS))
	for _, s := range c.Summary() {
		fmt.Printf("  svc %d %s: mean %s qps, peak %s qps\n",
			s.Service, s.Model, fmtF(s.MeanQPS), fmtF(s.PeakQPS))
	}
}

func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }
