// Command abacus-cluster replays a MAF-like trace on a simulated GPU
// cluster, comparing Kubernetes routing + node-level Abacus against a
// Clockwork-style central scheduler (§7.6, Figure 22).
//
// Usage:
//
//	abacus-cluster -nodes 4 -gpus 1 -qps 170 -minutes 10
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"abacus/internal/cli"
	"abacus/internal/cluster"
	"abacus/internal/trace"
)

var fail = cli.Failer("abacus-cluster")

func main() {
	nodes := flag.Int("nodes", 4, "cluster nodes")
	gpus := flag.Int("gpus", 1, "GPUs per node")
	qps := flag.Float64("qps", 170, "base offered load (diurnal + bursts applied on top)")
	minutes := flag.Float64("minutes", 10, "trace duration")
	qos := flag.Float64("qos", 100, "QoS target in ms")
	seed := flag.Int64("seed", 1, "trace seed")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker count for the side-by-side policy runs (results are identical at any setting)")
	modelsFlag := flag.String("models", "Res101,Res152,VGG19,Bert", "quad-wise deployment")
	csvPrefix := flag.String("csv", "", "write per-policy timelines to <prefix>-<policy>.csv")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	models, err := cli.ParseModels(*modelsFlag)
	if err != nil {
		fail(err)
	}

	durationMS := *minutes * 60_000
	gen := trace.NewGenerator(models, *seed)
	arrivals := gen.MAF(trace.DefaultMAFConfig(*qps, durationMS, *seed))
	fmt.Printf("replaying %d arrivals over %.0f minutes on %d GPUs\n",
		len(arrivals), *minutes, *nodes**gpus)

	// Both fleets replay the same (read-only) arrival slice side by side.
	var cfgs []cluster.Config
	for _, policy := range []cluster.Policy{cluster.KubeAbacus, cluster.Clockwork} {
		cfgs = append(cfgs, cluster.Config{
			Policy:      policy,
			Nodes:       *nodes,
			GPUsPerNode: *gpus,
			Models:      models,
			QoS:         *qos,
			Arrivals:    arrivals,
		})
	}
	start := time.Now()
	results := cluster.RunPolicies(cfgs, *parallel)
	elapsed := time.Since(start).Seconds()

	for _, res := range results {
		fmt.Printf("%-10s completed=%d dropped=%d tput=%.1f r/s p99=%.1f ms avg=%.1f ms %.1f J/query\n",
			res.Policy, res.Completed, res.Dropped, res.Throughput(durationMS),
			res.P99Latency, res.AvgLatency, res.JoulesPerQuery())
		if *csvPrefix != "" {
			name := fmt.Sprintf("%s-%s.csv", *csvPrefix, res.Policy)
			f, err := os.Create(name)
			if err != nil {
				fail(err)
			}
			if err := res.WriteTimelineCSV(f); err != nil {
				fail(err)
			}
			f.Close()
			fmt.Println("wrote", name)
		}
	}
	fmt.Printf("[%d policies completed in %.1fs with %d workers]\n", len(results), elapsed, *parallel)
}
