// Command abacus-models inspects the DNN model zoo: summary statistics per
// model, per-operator cost profiles, and solo latencies on the simulated
// device — the information the paper's offline profiling phase gathers.
//
// Usage:
//
//	abacus-models                          # zoo summary
//	abacus-models -model Res152 -batch 32  # per-operator profile
//	abacus-models -model Bert -batch 8 -seqlen 64 -csv ops.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"abacus/internal/cli"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
)

var fail = cli.Failer("abacus-models")

func main() {
	model := flag.String("model", "", "model to profile (empty: zoo summary)")
	batch := flag.Int("batch", 32, "batch size")
	seqlen := flag.Int("seqlen", 64, "sequence length (sequence models)")
	csvOut := flag.String("csv", "", "write the per-operator profile as CSV")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	p := gpusim.A100Profile()
	if *model == "" {
		summary(p)
		return
	}
	id, err := dnn.ModelIDByName(*model)
	if err != nil {
		fail(err)
	}
	m := dnn.Get(id)
	in := dnn.Input{Batch: *batch}
	if m.IsSequence() {
		in.SeqLen = *seqlen
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fail(err)
		}
		if err := m.WriteProfileCSV(f, in, p); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d operator rows to %s\n", m.NumOps(), *csvOut)
		return
	}

	m.WriteProfile(os.Stdout, in, p)
	s := m.Summarize(in, p)
	fmt.Printf("\n%s @ %+v: %d ops, %.1f GFLOPs, %.1f MB traffic, %.2f ms exclusive, %.1f MB weights\n",
		m.Name, in, s.Ops, s.FLOPs/1e9, s.Bytes/(1<<20), s.TotalMS, s.ParamBytes/(1<<20))
	kinds := make([]dnn.OpKind, 0, len(s.KindMS))
	for k := range s.KindMS {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return s.KindMS[kinds[i]] > s.KindMS[kinds[j]] })
	for _, k := range kinds {
		fmt.Printf("  %-14s %6.2f ms (%.0f%%)\n", k, s.KindMS[k], 100*s.KindMS[k]/s.TotalMS)
	}
}

func summary(p gpusim.Profile) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tops\tparams(MB)\tGFLOPs(max)\tsolo min(ms)\tsolo max(ms)\tQoS 2x(ms)")
	for _, m := range dnn.All() {
		minIn, maxIn := m.MinInput(), m.MaxInput()
		soloMin := dnn.SoloLatency(m, minIn, p)
		soloMax := dnn.SoloLatency(m, maxIn, p)
		transfer := dnn.TransferTime(m, maxIn, p)
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.2f\t%.2f\t%.1f\n",
			m.Name, m.NumOps(), m.ParamBytes()/(1<<20), m.FLOPs(maxIn)/1e9,
			soloMin, soloMax, 2*(soloMax+transfer))
	}
	tw.Flush()
}
