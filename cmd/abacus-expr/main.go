// Command abacus-expr regenerates the paper's figures on the simulated
// substrate and prints them as tables.
//
// Usage:
//
//	abacus-expr -exp fig14            # one figure at paper scale
//	abacus-expr -exp all -quick       # every figure, reduced workloads
//	abacus-expr -list                 # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"abacus"
	"abacus/internal/cli"
)

var fail = cli.Failer("abacus-expr")

func main() {
	exp := flag.String("exp", "all", "experiment id, comma-separated list, or 'all' (see -list)")
	quick := flag.Bool("quick", false, "reduced workloads (seconds instead of minutes)")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker count for the concurrent sweeps (results are identical at any setting)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	abacus.SetParallel(*parallel)

	if *list {
		for _, id := range abacus.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := strings.Split(*exp, ",")
	if *exp == "all" {
		ids = abacus.ExperimentIDs()
	}
	for _, id := range ids {
		start := time.Now()
		if err := abacus.RunExperiment(id, *quick, os.Stdout); err != nil {
			fail(err)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", id, time.Since(start).Seconds())
	}
}
