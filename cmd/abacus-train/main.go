// Command abacus-train performs the offline phase of Abacus: it profiles
// operator groups on the simulated device (instance-based sampling, §5.4),
// optionally persists the samples, trains the three candidate duration
// models (§5.5), and reports their held-out prediction errors.
//
// Usage:
//
//	abacus-train -models Res50,Res152 -samples 2000 -out samples.json
//	abacus-train -in samples.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"abacus/internal/dnn"
	"abacus/internal/predictor"
)

func main() {
	modelsFlag := flag.String("models", "Res50,Res101,Res152,IncepV3,VGG16,VGG19,Bert", "comma-separated model names")
	samplesPer := flag.Int("samples", 500, "samples per model combination")
	maxK := flag.Int("maxk", 2, "largest co-location degree to sample (1..4)")
	runs := flag.Int("runs", 3, "measurements per sample (paper: 100)")
	seed := flag.Int64("seed", 1, "sampling/training seed")
	out := flag.String("out", "", "write collected samples to this JSON file")
	modelOut := flag.String("model-out", "", "write the trained MLP predictor to this JSON file")
	in := flag.String("in", "", "load samples from this JSON file instead of collecting")
	flag.Parse()

	var samples []predictor.Sample
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		samples, err = predictor.LoadSamples(f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded %d samples from %s\n", len(samples), *in)
	} else {
		var models []dnn.ModelID
		for _, name := range strings.Split(*modelsFlag, ",") {
			m, err := dnn.ModelIDByName(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			models = append(models, m)
		}
		cfg := predictor.DefaultSamplerConfig()
		cfg.Seed = *seed
		cfg.Runs = *runs
		for k := 1; k <= *maxK; k++ {
			if k > len(models) {
				break
			}
			ks := predictor.Collect(models, k, *samplesPer, cfg)
			samples = append(samples, ks...)
			fmt.Printf("collected %d samples at co-location degree %d\n", len(ks), k)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := predictor.SaveSamples(f, samples); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d samples to %s\n", len(samples), *out)
	}

	codec := predictor.NewCodec()
	for _, tech := range []predictor.Technique{
		predictor.TechLinearRegression, predictor.TechSVR, predictor.TechMLP,
	} {
		cfg := predictor.TrainConfig{Technique: tech, Seed: *seed}
		if tech == predictor.TechMLP {
			cfg.LogTarget = true
		}
		_, mape, err := predictor.TrainEval(samples, codec, cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-18s held-out MAPE %.2f%%\n", tech, 100*mape)
	}

	if *modelOut != "" {
		cfg := predictor.DefaultTrainConfig()
		cfg.Seed = *seed
		p, err := predictor.Train(samples, codec, cfg)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*modelOut)
		if err != nil {
			fail(err)
		}
		if err := p.Save(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote trained predictor to %s\n", *modelOut)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "abacus-train:", err)
	os.Exit(1)
}
