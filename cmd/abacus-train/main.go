// Command abacus-train performs the offline phase of Abacus: it profiles
// operator groups on the simulated device (instance-based sampling, §5.4),
// optionally persists the samples, trains the three candidate duration
// models (§5.5), and reports their held-out prediction errors.
//
// Usage:
//
//	abacus-train -models Res50,Res152 -samples 2000 -out samples.json
//	abacus-train -in samples.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"abacus/internal/cli"
	"abacus/internal/predictor"
	"abacus/internal/runner"
)

var fail = cli.Failer("abacus-train")

func main() {
	modelsFlag := flag.String("models", "Res50,Res101,Res152,IncepV3,VGG16,VGG19,Bert", "comma-separated model names")
	samplesPer := flag.Int("samples", 500, "samples per model combination")
	maxK := flag.Int("maxk", 2, "largest co-location degree to sample (1..4)")
	runs := flag.Int("runs", 3, "measurements per sample (paper: 100)")
	seed := flag.Int64("seed", 1, "sampling/training seed")
	parallel := flag.Int("parallel", runtime.NumCPU(),
		"worker count for concurrent profiling/training (results are identical at any setting)")
	out := flag.String("out", "", "write collected samples to this JSON file")
	modelOut := flag.String("model-out", "", "write the trained MLP predictor to this JSON file")
	in := flag.String("in", "", "load samples from this JSON file instead of collecting")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	runner.SetDefaultParallel(*parallel)
	start := time.Now()

	var samples []predictor.Sample
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		samples, err = predictor.LoadSamples(f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("loaded %d samples from %s\n", len(samples), *in)
	} else {
		models, err := cli.ParseModels(*modelsFlag)
		if err != nil {
			fail(err)
		}
		cfg := predictor.DefaultSamplerConfig()
		cfg.Seed = *seed
		cfg.Runs = *runs
		kmax := *maxK
		if kmax > len(models) {
			kmax = len(models)
		}
		// Each degree profiles with its own sampler, so the degrees collect
		// concurrently; samples and counts come back in degree order.
		perK := runner.Map(kmax, *parallel, func(i int) []predictor.Sample {
			return predictor.Collect(models, i+1, *samplesPer, cfg)
		})
		for k, ks := range perK {
			samples = append(samples, ks...)
			fmt.Printf("collected %d samples at co-location degree %d\n", len(ks), k+1)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := predictor.SaveSamples(f, samples); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d samples to %s\n", len(samples), *out)
	}

	codec := predictor.NewCodec()
	techniques := []predictor.Technique{
		predictor.TechLinearRegression, predictor.TechSVR, predictor.TechMLP,
	}
	// The three candidate techniques train concurrently on the shared
	// read-only sample set; MAPEs print in technique order.
	mapes, err := runner.MapErr(len(techniques), *parallel, func(i int) (float64, error) {
		cfg := predictor.TrainConfig{Technique: techniques[i], Seed: *seed}
		if techniques[i] == predictor.TechMLP {
			cfg.LogTarget = true
		}
		_, mape, err := predictor.TrainEval(samples, codec, cfg)
		return mape, err
	})
	if err != nil {
		fail(err)
	}
	for i, tech := range techniques {
		fmt.Printf("%-18s held-out MAPE %.2f%%\n", tech, 100*mapes[i])
	}

	if *modelOut != "" {
		cfg := predictor.DefaultTrainConfig()
		cfg.Seed = *seed
		p, err := predictor.Train(samples, codec, cfg)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*modelOut)
		if err != nil {
			fail(err)
		}
		if err := p.Save(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote trained predictor to %s\n", *modelOut)
	}
	fmt.Printf("[done in %.1fs with %d workers]\n", time.Since(start).Seconds(), *parallel)
}
