// Command abacus-loadgen drives a running abacus-gateway over HTTP: an
// open-loop mode replaying a seeded Poisson schedule, a workload spec, or a
// trace file against the wall clock, and a closed-loop mode with a fixed
// number of in-flight requesters (optionally with per-worker think times).
// It discovers the deployment from /statz, and in open-loop mode replays the
// identical schedule through the offline simulator to report
// predicted-vs-delivered latency for the same seed.
//
// Usage:
//
//	abacus-loadgen -target http://127.0.0.1:8080 -qps 30 -seconds 10 -seed 1
//	abacus-loadgen -spec examples/workloads/flash-crowd.json
//	abacus-loadgen -closed -concurrency 8 -requests 500 -think-ms 200
//	abacus-loadgen -trace arrivals.csv -no-compare     # CSV or tracev2
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"time"

	"abacus/internal/cli"
	"abacus/internal/dnn"
	"abacus/internal/server"
	"abacus/internal/trace"
	"abacus/internal/workload"
)

var fail = cli.Failer("abacus-loadgen")

func main() {
	target := flag.String("target", "http://127.0.0.1:8080", "gateway base URL")
	qps := flag.Float64("qps", 30, "aggregate offered load, queries per second")
	seconds := flag.Float64("seconds", 10, "schedule duration in virtual seconds")
	seed := flag.Int64("seed", 1, "workload seed")
	speedup := flag.Float64("speedup", 0, "schedule pacing factor (0: match the gateway's)")
	deadlineMS := flag.Float64("deadline-ms", 0, "per-request SLO override in virtual ms (0: service QoS)")
	traceIn := flag.String("trace", "", "replay an arrival trace file (CSV or tracev2, sniffed) instead of generating Poisson load")
	specFile := flag.String("spec", "", "compile a workload spec (JSON or YAML) into the arrival schedule instead of Poisson load")
	closed := flag.Bool("closed", false, "closed-loop mode: keep -concurrency requests in flight")
	concurrency := flag.Int("concurrency", 4, "closed-loop in-flight requesters")
	requests := flag.Int("requests", 0, "closed-loop total requests (0: schedule length)")
	thinkMS := flag.Float64("think-ms", 0, "closed-loop mean think time between a worker's requests, virtual ms (0: none)")
	thinkDist := flag.String("think-dist", "exp", "closed-loop think-time distribution: exp, lognormal, constant, or pareto")
	thinkSigma := flag.Float64("think-sigma", 0, "lognormal think-time sigma")
	thinkAlpha := flag.Float64("think-alpha", 0, "pareto think-time tail exponent")
	noCompare := flag.Bool("no-compare", false, "skip the offline simulator comparison")
	drop := flag.Float64("drop", 0, "probability each inference request or its response is lost in transit (exercises the retry path)")
	dropSeed := flag.Int64("drop-seed", 1, "seed for the lossy-transport drop coins")
	retries := flag.Int("retries", 0, "max attempts per request through the retry layer (0: 3 when -drop is set, else none)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	ctx := context.Background()
	var lossy *server.LossyTransport
	var hc *http.Client
	if *drop > 0 {
		if *drop > 1 {
			fail(fmt.Errorf("-drop %g outside [0, 1]", *drop))
		}
		lossy = server.NewLossyTransport(nil, *drop, *dropSeed)
		hc = &http.Client{Transport: lossy}
	}
	client := server.NewClient(*target, hc)
	if err := client.WaitReady(ctx, 5*time.Second); err != nil {
		fail(err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		fail(err)
	}
	models := make([]dnn.ModelID, len(st.Services))
	qos := make([]float64, len(st.Services))
	for i, svc := range st.Services {
		m, err := dnn.ModelIDByName(svc.Model)
		if err != nil {
			fail(fmt.Errorf("gateway serves unknown model %q: %w", svc.Model, err))
		}
		models[i] = m
		qos[i] = svc.QoSMS
	}
	pace := *speedup
	if pace <= 0 {
		pace = st.Speedup
	}
	fmt.Printf("gateway serves %v (speedup %g)\n", models, st.Speedup)

	var arrivals []trace.Arrival
	switch {
	case *traceIn != "" && *specFile != "":
		fail(fmt.Errorf("-trace and -spec are mutually exclusive"))
	case *traceIn != "":
		data, err := os.ReadFile(*traceIn)
		if err != nil {
			fail(err)
		}
		if workload.IsTraceV2(data) {
			meta, got, err := workload.ReadTrace(bytes.NewReader(data))
			if err != nil {
				fail(err)
			}
			if meta.Services > len(models) {
				fail(fmt.Errorf("%s spans %d services, gateway serves %d", *traceIn, meta.Services, len(models)))
			}
			arrivals = got
			fmt.Printf("replaying %d arrivals from %s (tracev2 %q, seed %d)\n",
				len(arrivals), *traceIn, meta.Name, meta.Seed)
		} else {
			arrivals, err = trace.ReadCSV(bytes.NewReader(data), len(models))
			if err != nil {
				fail(err)
			}
			fmt.Printf("replaying %d arrivals from %s\n", len(arrivals), *traceIn)
		}
	case *specFile != "":
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fail(err)
		}
		spec, err := workload.Parse(data)
		if err != nil {
			fail(err)
		}
		c, err := spec.Bind(models, *seed)
		if err != nil {
			fail(err)
		}
		arrivals = c.Materialize()
		fmt.Printf("compiled %s: %d arrivals over %.1fs (seed %d)\n",
			*specFile, len(arrivals), c.Spec.DurationMS/1000, c.Seed)
	default:
		arrivals = trace.NewGenerator(models, *seed).Poisson(*qps, *seconds*1000)
		fmt.Printf("generated %d arrivals (%.0f QPS over %.0fs, seed %d)\n",
			len(arrivals), *qps, *seconds, *seed)
	}

	maxAttempts := *retries
	if maxAttempts <= 0 && *drop > 0 {
		maxAttempts = 3
	}
	var retry *server.RetryPolicy
	if maxAttempts > 1 {
		retry = &server.RetryPolicy{MaxAttempts: maxAttempts, JitterSeed: *dropSeed}
	}
	var think *workload.ThinkSpec
	if *thinkMS > 0 {
		think = &workload.ThinkSpec{Kind: *thinkDist, MeanMS: *thinkMS, Sigma: *thinkSigma, Alpha: *thinkAlpha}
		if err := think.Validate(); err != nil {
			fail(err)
		}
		if !*closed {
			fail(fmt.Errorf("-think-ms only applies to -closed mode"))
		}
	}
	res, err := server.RunLoad(ctx, server.LoadConfig{
		Client:      client,
		Models:      models,
		Arrivals:    arrivals,
		Speedup:     pace,
		DeadlineMS:  *deadlineMS,
		Closed:      *closed,
		Concurrency: *concurrency,
		Requests:    *requests,
		Think:       think,
		Seed:        *seed,
		Retry:       retry,
	})
	if err != nil {
		fail(err)
	}

	for i := range res.PerService {
		printStats(models[i].String(), &res.PerService[i])
	}
	printStats("TOTAL", &res.Total)
	fmt.Printf("[%d requests in %.1fs wall]\n", res.Total.Sent, res.WallSeconds)
	if lossy != nil {
		fmt.Printf("lossy transport: dropped %d before send, %d after send; %d retries, %d duplicates suppressed\n",
			lossy.DroppedBeforeSend(), lossy.DroppedAfterSend(), res.Total.Retries, res.Total.Duplicates)
	}

	if !*noCompare && !*closed && res.Total.Completed > 0 {
		offline := server.OfflineBaseline(models, qos, arrivals, nil)
		offP99 := offline.TailLatency(-1, 99)
		liveP99 := res.Total.P99MS
		delta := math.NaN()
		if offP99 > 0 {
			delta = 100 * (liveP99 - offP99) / offP99
		}
		fmt.Printf("offline simulator (same seed): p99 %.2f ms vs live %.2f ms (Δ %+.1f%%), goodput %.1f q/s\n",
			offP99, liveP99, delta, offline.Goodput())
	}
}

func printStats(name string, s *server.LoadStats) {
	fmt.Printf("%-8s sent=%d accepted=%d completed=%d violated=%d dropped=%d rej(deadline/queue)=%d/%d 503=%d err=%d",
		name, s.Sent, s.Accepted, s.Completed, s.Violated, s.Dropped,
		s.RejectedDeadline, s.RejectedQueue, s.Unavailable, s.Errors)
	if s.Completed > 0 {
		fmt.Printf(" p50=%.2fms p99=%.2fms goodput=%.1f q/s", s.P50MS, s.P99MS, s.GoodputQPS)
	}
	fmt.Println()
}
