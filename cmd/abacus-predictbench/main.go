// Command abacus-predictbench runs the prediction hot-path
// microbenchmarks (batched MLP forward, allocation-free span search, and
// the gateway round) via testing.Benchmark and writes the results as
// BENCH_predict.json. CI uploads the artifact next to BENCH_gateway.json
// and abacus-trend diffs the two: allocs/op is deterministic and gated
// tightly, ns/op generously.
//
// Usage:
//
//	abacus-predictbench -o BENCH_predict.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"abacus/internal/admit"
	"abacus/internal/chaos"
	"abacus/internal/cli"
	"abacus/internal/core"
	"abacus/internal/dnn"
	"abacus/internal/gpusim"
	"abacus/internal/ml"
	"abacus/internal/predictor"
	"abacus/internal/sched"
)

var fail = cli.Failer("abacus-predictbench")

func main() {
	outFile := flag.String("o", "BENCH_predict.json", "artifact output path (empty: stdout table only)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	wallStart := time.Now()
	var benches []chaos.PredictBench
	for _, bm := range hotPathBenchmarks() {
		res := testing.Benchmark(bm.fn)
		benches = append(benches, chaos.PredictBench{
			Name:        bm.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
		})
		fmt.Printf("%-32s %10d ns/op %8d B/op %6d allocs/op\n",
			bm.name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	}

	if *outFile == "" {
		return
	}
	art := chaos.PredictArtifact{
		WallSeconds: time.Since(wallStart).Seconds(),
		Benchmarks:  benches,
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// hotPathBenchmarks mirrors the hot-path benchmarks in the repo's test
// suite (same setups and names), packaged for testing.Benchmark so the
// bench lane can emit them as a machine-readable artifact.
func hotPathBenchmarks() []namedBench {
	var out []namedBench

	// Batched MLP forward at the batch sizes the multi-way search issues.
	const features = 28 // codec width for a 12-model zoo: 12 + 4·4
	mlp := fitBenchMLP(features)
	rng := rand.New(rand.NewSource(9))
	for _, batch := range []int{1, 8, 64} {
		X := make([][]float64, batch)
		for i := range X {
			X[i] = make([]float64, features)
			for j := range X[i] {
				X[i][j] = rng.Float64() * 100
			}
		}
		out = append(out, namedBench{
			name: fmt.Sprintf("BenchmarkMLPPredictBatch/B=%d", batch),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					mlp.PredictBatch(X)
				}
			},
		})
	}

	// Multi-way span search against a trained duration model with a
	// two-entry base group.
	pred := trainBenchPredictor([]dnn.ModelID{dnn.ResNet50, dnn.ResNet152, dnn.InceptionV3})
	m50, m152, mInc := dnn.Get(dnn.ResNet50), dnn.Get(dnn.ResNet152), dnn.Get(dnn.InceptionV3)
	base := predictor.Group{
		{Model: dnn.ResNet50, OpStart: 0, OpEnd: m50.NumOps(), Batch: 8},
		{Model: dnn.ResNet152, OpStart: 40, OpEnd: m152.NumOps(), Batch: 16},
	}
	entry := predictor.Entry{Model: dnn.InceptionV3, OpStart: 0, Batch: 16}
	budget := pred.Predict(base) * 1.2
	out = append(out, namedBench{
		name: "BenchmarkMaxFeasibleSpan",
		fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sched.MaxFeasibleSpan(pred, base, entry, mInc.NumOps(), budget, 4)
			}
		},
	})

	// Gateway per-request hot path minus HTTP: one admission decision plus
	// one full scheduling round on the hot pair.
	models := []dnn.ModelID{dnn.ResNet152, dnn.InceptionV3}
	gwPred := trainBenchPredictor(models)
	profile := gpusim.A100Profile()
	rt, err := core.New(core.Config{Models: models, Model: gwPred, Profile: profile})
	if err != nil {
		fail(err)
	}
	adm := admit.New(gwPred, profile, rt.Services(), 64, 0.02, nil)
	in := dnn.Input{Batch: 8}
	out = append(out, namedBench{
		name: "BenchmarkGatewayRound",
		fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				svc := i % len(models)
				now := rt.Engine().Now()
				d := adm.Decide(now, svc, in, 0)
				if !d.OK {
					fail(fmt.Errorf("iteration %d: admission rejected (%s) with an empty backlog", i, d.Reason))
				}
				adm.Admitted(svc, d.WorkMS)
				rt.Submit(svc, in, now)
				rt.Drain()
				adm.Finish(svc, d.WorkMS)
			}
		},
	})

	return out
}

// fitBenchMLP fits a paper-topology MLP over a synthetic feature space
// shaped like the predictor codec's vectors, matching the test suite's
// BenchmarkMLPPredictBatch setup.
func fitBenchMLP(features int) *ml.MLP {
	rng := rand.New(rand.NewSource(7))
	var ds ml.Dataset
	for i := 0; i < 256; i++ {
		x := make([]float64, features)
		for j := range x {
			x[j] = rng.Float64() * 100
		}
		y := 0.0
		for j, v := range x {
			y += v * float64(j%5)
		}
		ds.Append(x, y+rng.NormFloat64())
	}
	m := &ml.MLP{Epochs: 30, Seed: 1}
	if err := m.Fit(ds); err != nil {
		fail(err)
	}
	return m
}

// trainBenchPredictor trains a duration model on a quick profiling sweep,
// matching the test suite's span-search and gateway benchmark setups.
func trainBenchPredictor(models []dnn.ModelID) *predictor.Predictor {
	cfg := predictor.DefaultSamplerConfig()
	cfg.Runs = 1
	samples := predictor.Collect(models, 2, 100, cfg)
	tc := predictor.DefaultTrainConfig()
	tc.Epochs = 50
	pred, err := predictor.Train(samples, predictor.NewCodec(), tc)
	if err != nil {
		fail(err)
	}
	return pred
}
