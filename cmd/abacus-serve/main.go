// Command abacus-serve runs a single-GPU serving simulation: co-located
// DNN services under one of the four schedulers, with Poisson load.
//
// Usage:
//
//	abacus-serve -models Res152,IncepV3 -policy Abacus -qps 50 -seconds 20
//	abacus-serve -models Res101,Res152,VGG19,Bert -policy FCFS -qps 100
package main

import (
	"flag"
	"fmt"
	"os"

	"abacus"
	"abacus/internal/cli"
	"abacus/internal/trace"
)

var fail = cli.Failer("abacus-serve")

func main() {
	modelsFlag := flag.String("models", "Res152,IncepV3", "comma-separated model names (Res50,Res101,Res152,IncepV3,VGG16,VGG19,Bert)")
	policyFlag := flag.String("policy", "Abacus", "scheduler: FCFS, SJF, EDF, or Abacus")
	qps := flag.Float64("qps", 50, "aggregate offered load, queries per second")
	seconds := flag.Float64("seconds", 20, "simulated duration")
	seed := flag.Int64("seed", 1, "workload seed")
	trained := flag.Bool("trained-predictor", false, "train the MLP predictor instead of using the exact oracle")
	predictorFile := flag.String("predictor", "", "load a trained predictor (see abacus-train -model-out)")
	samples := flag.Int("samples", 500, "profiling samples per combination when training")
	csvOut := flag.String("csv", "", "write per-query records to this CSV file")
	traceIn := flag.String("trace", "", "replay an arrival trace CSV instead of generating Poisson load")
	traceOut := flag.String("trace-out", "", "write the generated arrival trace to this CSV file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	models, err := cli.ParseModels(*modelsFlag)
	if err != nil {
		fail(err)
	}
	policy, err := cli.ParsePolicy(*policyFlag)
	if err != nil {
		fail(err)
	}

	cfg := abacus.SystemConfig{Models: models, Policy: policy, Seed: *seed}
	if *predictorFile != "" {
		f, err := os.Open(*predictorFile)
		if err != nil {
			fail(err)
		}
		p, err := abacus.LoadPredictor(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		cfg.Predictor = p
	} else if *trained && policy == abacus.PolicyAbacus {
		fmt.Fprintf(os.Stderr, "training predictor (%d samples per combination)...\n", *samples)
		p, err := abacus.TrainPredictor(models, abacus.TrainConfig{
			SamplesPerCombo: *samples,
			MaxCoLocated:    len(models),
			Seed:            *seed,
		})
		if err != nil {
			fail(err)
		}
		cfg.Predictor = p
	}

	sys, err := abacus.NewSystem(cfg)
	if err != nil {
		fail(err)
	}
	for i, q := range sys.QoSTargets() {
		fmt.Printf("service %-8v QoS target %.1f ms\n", models[i], q)
	}
	gen := trace.NewGenerator(models, *seed)
	var arrivals []trace.Arrival
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fail(err)
		}
		arrivals, err = trace.ReadCSV(f, len(models))
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("replaying %d arrivals from %s\n", len(arrivals), *traceIn)
	} else {
		arrivals = gen.Poisson(*qps, *seconds*1000)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		if err := trace.WriteCSV(f, arrivals); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d arrivals to %s\n", len(arrivals), *traceOut)
	}
	report := sys.ServeArrivals(arrivals)
	fmt.Println(report)
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fail(err)
		}
		if err := report.WriteCSV(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d query records to %s\n", report.Queries(), *csvOut)
	}
	fmt.Printf("p99 latency (all services): %.2f ms, SM utilization %.1f%%\n",
		report.TailLatency(-1, 99), 100*report.Utilization())
}
