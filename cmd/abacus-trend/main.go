// Command abacus-trend diffs two gateway benchmark artifacts
// (BENCH_gateway.json, see abacus-chaos -o) and exits nonzero on a
// regression: a scenario dropped from the suite, goodput down more than the
// tolerance, or p99 up more than the tolerance. Every compared field is
// deterministic, so the check is exact — no noise bands.
//
// Usage:
//
//	abacus-trend -base BENCH_base.json -head BENCH_gateway.json
//	abacus-trend -base old.json -head new.json -max-goodput-drop 0.01 -max-p99-growth 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"abacus/internal/chaos"
	"abacus/internal/cli"
)

var fail = cli.Failer("abacus-trend")

func main() {
	basePath := flag.String("base", "", "baseline artifact (required)")
	headPath := flag.String("head", "BENCH_gateway.json", "candidate artifact")
	maxGoodputDrop := flag.Float64("max-goodput-drop", 0, "largest tolerated absolute goodput decrease (default 0.005)")
	maxP99Growth := flag.Float64("max-p99-growth", 0, "largest tolerated relative p99 increase (default 0.10)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}
	if *basePath == "" {
		fail(fmt.Errorf("-base is required"))
	}

	base := readArtifact(*basePath)
	head := readArtifact(*headPath)
	issues := chaos.CompareTrend(base, head, chaos.TrendOptions{
		MaxGoodputDrop: *maxGoodputDrop,
		MaxP99Growth:   *maxP99Growth,
	})

	fmt.Printf("compared %d base scenarios against %d head scenarios\n",
		len(base.Reports), len(head.Reports))
	if len(issues) == 0 {
		fmt.Println("trend clean: no regressions")
		return
	}
	for _, issue := range issues {
		fmt.Fprintf(os.Stderr, "abacus-trend: %s\n", issue)
	}
	os.Exit(1)
}

func readArtifact(path string) chaos.Artifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	a, err := chaos.ParseArtifact(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return a
}
