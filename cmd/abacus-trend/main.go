// Command abacus-trend diffs two gateway benchmark artifacts
// (BENCH_gateway.json, see abacus-chaos -o) and exits nonzero on a
// regression: a scenario dropped from the suite, goodput down more than the
// tolerance, p99 up more than the tolerance, a single service shedding
// or starving beyond the per-service tolerances, or — in cluster scenarios —
// one node's goodput dropping beyond the per-node tolerance even when the
// cluster aggregate holds. Every compared field is deterministic, so the
// check is exact — no noise bands.
//
// With -predict-base/-predict-head it also diffs the prediction hot-path
// artifacts (BENCH_predict.json, see abacus-predictbench): allocs/op is
// deterministic and gated tightly, ns/op generously.
//
// With -http-base/-http-head it also diffs the HTTP ingest artifacts
// (BENCH_http.json, see abacus-httpbench): allocs/request and the codec
// component allocs/op are gated tightly; peak QPS and ns/op are wall-clock
// figures gated generously, catching collapses rather than noise.
//
// With -sim-base/-sim-head it also diffs the simulation hot-path artifacts
// (BENCH_sim.json, see abacus-simbench): allocs/op is deterministic — the
// hot path is allocation-free in steady state — and gated tightly, ns/op
// collapse-only.
//
// With -autoscale-base/-autoscale-head it also diffs the elastic-autoscaler
// artifacts (BENCH_autoscale.json, see abacus-chaos -autoscale-out): goodput
// is held to an absolute floor (a PR may not ship an autoscaler below the
// paper's 0.98 bar no matter the baseline) and node-milliseconds — the
// cost the scaler exists to save — may not regress past the tolerance.
//
// Usage:
//
//	abacus-trend -base BENCH_base.json -head BENCH_gateway.json
//	abacus-trend -base old.json -head new.json -max-goodput-drop 0.01 -max-p99-growth 0.2
//	abacus-trend -base old.json -head new.json \
//	    -predict-base PREDICT_base.json -predict-head BENCH_predict.json \
//	    -http-base HTTP_base.json -http-head BENCH_http.json
package main

import (
	"flag"
	"fmt"
	"os"

	"abacus/internal/chaos"
	"abacus/internal/cli"
)

var fail = cli.Failer("abacus-trend")

func main() {
	basePath := flag.String("base", "", "baseline gateway artifact (required)")
	headPath := flag.String("head", "BENCH_gateway.json", "candidate gateway artifact")
	predictBase := flag.String("predict-base", "", "baseline prediction hot-path artifact (enables the predict gate)")
	predictHead := flag.String("predict-head", "BENCH_predict.json", "candidate prediction hot-path artifact")
	httpBase := flag.String("http-base", "", "baseline HTTP ingest artifact (enables the http gate)")
	httpHead := flag.String("http-head", "BENCH_http.json", "candidate HTTP ingest artifact")
	simBase := flag.String("sim-base", "", "baseline simulation hot-path artifact (enables the sim gate)")
	simHead := flag.String("sim-head", "BENCH_sim.json", "candidate simulation hot-path artifact")
	autoscaleBase := flag.String("autoscale-base", "", "baseline autoscale artifact (enables the autoscale gate)")
	autoscaleHead := flag.String("autoscale-head", "BENCH_autoscale.json", "candidate autoscale artifact")
	goodputFloor := flag.Float64("autoscale-goodput-floor", 0, "absolute goodput floor every elastic scenario must meet (default 0.98)")
	maxNodeMSGrowth := flag.Float64("max-node-ms-growth", 0, "largest tolerated relative node-milliseconds increase in the autoscale artifact (default 0.10)")
	maxQPSDrop := flag.Float64("max-qps-drop", 0, "largest tolerated relative peak-QPS decrease in the http artifact (default 0.50)")
	maxHTTPAllocsGrowth := flag.Float64("max-http-allocs-growth", 0, "largest tolerated relative allocs-per-request increase in the http artifact (default 0.10)")
	maxHTTPAllocs := flag.Float64("max-http-allocs", 0, "absolute allocs-per-request ceiling in the http artifact (0 disables)")
	maxGoodputDrop := flag.Float64("max-goodput-drop", 0, "largest tolerated absolute goodput decrease (default 0.005)")
	maxP99Growth := flag.Float64("max-p99-growth", 0, "largest tolerated relative p99 increase (default 0.10)")
	maxShedGrowth := flag.Float64("max-shed-growth", 0, "largest tolerated relative per-service degraded-shed increase (default 0.10)")
	maxAdmittedDrop := flag.Float64("max-admitted-drop", 0, "largest tolerated relative per-service admitted decrease (default 0.05)")
	maxNodeGoodputDrop := flag.Float64("max-node-goodput-drop", 0, "largest tolerated absolute per-node goodput decrease in cluster scenarios (default 0.01)")
	maxNsGrowth := flag.Float64("max-ns-growth", 0, "largest tolerated relative ns/op increase in the predict artifact (default 0.50)")
	maxAllocsGrowth := flag.Float64("max-allocs-growth", 0, "largest tolerated relative allocs/op increase in the predict artifact (default 0.10)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}
	if *basePath == "" {
		fail(fmt.Errorf("-base is required"))
	}

	base := readArtifact(*basePath)
	head := readArtifact(*headPath)
	issues := chaos.CompareTrend(base, head, chaos.TrendOptions{
		MaxGoodputDrop:     *maxGoodputDrop,
		MaxP99Growth:       *maxP99Growth,
		MaxShedGrowth:      *maxShedGrowth,
		MaxAdmittedDrop:    *maxAdmittedDrop,
		MaxNodeGoodputDrop: *maxNodeGoodputDrop,
	})
	fmt.Printf("compared %d base scenarios against %d head scenarios\n",
		len(base.Reports), len(head.Reports))

	if *predictBase != "" {
		pb := readPredictArtifact(*predictBase)
		ph := readPredictArtifact(*predictHead)
		issues = append(issues, chaos.ComparePredictTrend(pb, ph, chaos.PredictTrendOptions{
			MaxNsGrowth:     *maxNsGrowth,
			MaxAllocsGrowth: *maxAllocsGrowth,
		})...)
		fmt.Printf("compared %d base hot-path benchmarks against %d head benchmarks\n",
			len(pb.Benchmarks), len(ph.Benchmarks))
	}

	if *httpBase != "" {
		hb := readHTTPArtifact(*httpBase)
		hh := readHTTPArtifact(*httpHead)
		issues = append(issues, chaos.CompareHTTPTrend(hb, hh, chaos.HTTPTrendOptions{
			MaxQPSDrop:          *maxQPSDrop,
			MaxAllocsGrowth:     *maxHTTPAllocsGrowth,
			MaxAllocsPerRequest: *maxHTTPAllocs,
		})...)
		fmt.Printf("compared http ingest: base peak %.0f qps / %.1f allocs/req, head peak %.0f qps / %.1f allocs/req\n",
			hb.PeakQPS, hb.AllocsPerRequest, hh.PeakQPS, hh.AllocsPerRequest)
	}

	if *simBase != "" {
		sb := readSimArtifact(*simBase)
		sh := readSimArtifact(*simHead)
		issues = append(issues, chaos.CompareSimTrend(sb, sh, chaos.SimTrendOptions{})...)
		fmt.Printf("compared %d base simulation benchmarks against %d head benchmarks\n",
			len(sb.Benchmarks), len(sh.Benchmarks))
	}

	if *autoscaleBase != "" {
		ab := readAutoscaleArtifact(*autoscaleBase)
		ah := readAutoscaleArtifact(*autoscaleHead)
		issues = append(issues, chaos.CompareAutoscaleTrend(ab, ah, chaos.AutoscaleTrendOptions{
			GoodputFloor:    *goodputFloor,
			MaxNodeMSGrowth: *maxNodeMSGrowth,
		})...)
		fmt.Printf("compared %d base autoscale scenarios against %d head scenarios\n",
			len(ab.Scenarios), len(ah.Scenarios))
	}

	if len(issues) == 0 {
		fmt.Println("trend clean: no regressions")
		return
	}
	for _, issue := range issues {
		fmt.Fprintf(os.Stderr, "abacus-trend: %s\n", issue)
	}
	os.Exit(1)
}

func readArtifact(path string) chaos.Artifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	a, err := chaos.ParseArtifact(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return a
}

func readPredictArtifact(path string) chaos.PredictArtifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	a, err := chaos.ParsePredictArtifact(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return a
}

func readHTTPArtifact(path string) chaos.HTTPArtifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	a, err := chaos.ParseHTTPArtifact(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return a
}

func readSimArtifact(path string) chaos.SimArtifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	a, err := chaos.ParseSimArtifact(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return a
}

func readAutoscaleArtifact(path string) chaos.AutoscaleArtifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	a, err := chaos.ParseAutoscaleArtifact(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return a
}
