// Command abacus-chaos runs named or scripted fault-injection scenarios
// against the full serving stack in virtual time and asserts QoS floors.
// Reports are byte-deterministic for a given seed and script at any
// -parallel width, so CI can diff them instead of tolerating flake.
//
// Usage:
//
//	abacus-chaos                             # run the built-in suite
//	abacus-chaos -scenario throttle50-degraded -assert-goodput 0.99
//	abacus-chaos -script faults.csv -models Res152,IncepV3 -qps 40
//	abacus-chaos -workload examples/workloads/flash-crowd.json -assert-goodput 0.97
//	abacus-chaos -bench -o BENCH_gateway.json # CI benchmark artifact
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"abacus/internal/admit"
	"abacus/internal/chaos"
	"abacus/internal/cli"
	"abacus/internal/scaler"
	"abacus/internal/workload"
)

var fail = cli.Failer("abacus-chaos")

func main() {
	scenarioFlag := flag.String("scenario", "", "named built-in scenario (default: the whole suite); see -list")
	list := flag.Bool("list", false, "list built-in scenarios and exit")
	scriptFile := flag.String("script", "", "fault script file (JSON or CSV kind,start_ms,end_ms,magnitude[,mem]) replacing the built-ins")
	workloadFile := flag.String("workload", "", "workload spec file (JSON or YAML, see internal/workload) driving arrivals for a -script-style run; combinable with -script faults")
	modelsFlag := flag.String("models", "Res152,IncepV3", "comma-separated model names for -script runs")
	nodes := flag.Int("nodes", 1, "per-GPU nodes for -script runs; every node hosts every model, and windows may be node-scoped")
	qps := flag.Float64("qps", 30, "aggregate offered load for -script runs, queries per second")
	durationMS := flag.Float64("duration", 10000, "arrival window for -script runs, virtual ms")
	seed := flag.Int64("seed", 11, "seed for arrivals, fault coins, and retry jitter in -script runs")
	parallel := flag.Int("parallel", runtime.NumCPU(), "scenario worker-pool width (reports are identical at any width)")
	degrade := flag.Bool("degrade", true, "enable the degraded-mode controller in -script runs")
	retry := flag.Bool("retry", false, "give -script runs a retrying virtual client")
	predictCache := flag.Int("predict-cache", 0, "oracle memo-cache capacity for -script runs (0 = off; reports are identical either way)")
	autoscale := flag.Bool("autoscale", false, "give -script runs the live elastic autoscaler between -min-nodes and -max-nodes (replaces -nodes)")
	minNodes := flag.Int("min-nodes", 1, "autoscale floor for -script runs")
	maxNodes := flag.Int("max-nodes", 8, "autoscale ceiling for -script runs")
	warmupMS := flag.Float64("warmup-ms", 1500, "autoscale warm-up window for -script runs, virtual ms")
	capacityQPS := flag.Float64("capacity-qps", 30, "autoscale per-node sustainable load for -script runs, virtual QPS")
	scaleIntervalMS := flag.Float64("scale-interval-ms", 1000, "autoscale control-loop interval for -script runs, virtual ms")
	assertGoodput := flag.Float64("assert-goodput", 0, "exit 1 unless every report's goodput meets this floor")
	jsonOut := flag.Bool("json", false, "emit reports as JSON instead of text")
	outFile := flag.String("o", "", "also write the JSON report array to this file")
	autoscaleOut := flag.String("autoscale-out", "", "write an autoscale trend artifact (per-scenario goodput and node-hours) for every elastic report to this file")
	bench := flag.Bool("bench", false, "benchmark mode: runs the suite and includes wall_seconds in -o output")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}
	if *list {
		for _, sc := range chaos.Scenarios() {
			fmt.Println(sc.Name)
		}
		return
	}

	var elastic *scaler.Config
	if *autoscale {
		elastic = &scaler.Config{
			MinNodes:    *minNodes,
			MaxNodes:    *maxNodes,
			CapacityQPS: *capacityQPS,
			WarmupMS:    *warmupMS,
			IntervalMS:  *scaleIntervalMS,
		}
	}
	scenarios, err := selectScenarios(*scenarioFlag, *scriptFile, *workloadFile, *modelsFlag, *nodes, *qps, *durationMS, *seed, *degrade, *retry, *predictCache, elastic)
	if err != nil {
		fail(err)
	}

	wallStart := time.Now()
	reports, err := chaos.RunAll(scenarios, *parallel)
	if err != nil {
		fail(err)
	}
	wallSeconds := time.Since(wallStart).Seconds()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail(err)
		}
	} else {
		for _, rep := range reports {
			fmt.Print(rep.Text())
		}
	}

	if *outFile != "" {
		if err := writeArtifact(*outFile, reports, *bench, wallSeconds); err != nil {
			fail(err)
		}
	}
	if *autoscaleOut != "" {
		if err := writeAutoscaleArtifact(*autoscaleOut, reports, *bench, wallSeconds); err != nil {
			fail(err)
		}
	}

	if *assertGoodput > 0 {
		bad := false
		for _, rep := range reports {
			if rep.Goodput < *assertGoodput {
				fmt.Fprintf(os.Stderr, "abacus-chaos: %s goodput %.4f below floor %.4f\n",
					rep.Name, rep.Goodput, *assertGoodput)
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
	}
}

// selectScenarios resolves the flag combination into the scenario list.
func selectScenarios(name, scriptFile, workloadFile, modelsFlag string, nodes int, qps, durationMS float64, seed int64, degrade, retry bool, predictCache int, elastic *scaler.Config) ([]chaos.Scenario, error) {
	if scriptFile != "" || workloadFile != "" {
		models, err := cli.ParseModels(modelsFlag)
		if err != nil {
			return nil, err
		}
		sc := chaos.Scenario{
			Models:       models,
			Nodes:        nodes,
			QPS:          qps,
			DurationMS:   durationMS,
			Seed:         seed,
			PredictCache: predictCache,
		}
		if scriptFile != "" {
			data, err := os.ReadFile(scriptFile)
			if err != nil {
				return nil, err
			}
			script, err := chaos.ParseScript(data)
			if err != nil {
				return nil, err
			}
			sc.Script = script
			sc.Name = strings.TrimSuffix(scriptFile, ".csv")
		}
		if workloadFile != "" {
			data, err := os.ReadFile(workloadFile)
			if err != nil {
				return nil, err
			}
			spec, err := workload.Parse(data)
			if err != nil {
				return nil, err
			}
			sc.Workload = spec
			if sc.Name == "" {
				sc.Name = spec.Name
			}
		}
		if !degrade {
			sc.Degrade = admit.DegradeConfig{Disabled: true}
		}
		if retry {
			sc.Retry = &chaos.RetryConfig{}
		}
		if elastic != nil {
			sc.Autoscale = elastic
			sc.Nodes = elastic.MinNodes
		}
		return []chaos.Scenario{sc}, nil
	}
	if name != "" {
		sc, ok := chaos.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (try -list)", name)
		}
		return []chaos.Scenario{sc}, nil
	}
	return chaos.Scenarios(), nil
}

func writeArtifact(path string, reports []*chaos.Report, bench bool, wallSeconds float64) error {
	art := chaos.Artifact{Reports: reports}
	if bench {
		art.WallSeconds = wallSeconds
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeAutoscaleArtifact distills every elastic report into the compact
// trend artifact that abacus-trend gates on (goodput floor, node-hours
// regression). Errors out when no report ran the autoscaler, so a
// misconfigured CI lane fails loudly instead of gating on nothing.
func writeAutoscaleArtifact(path string, reports []*chaos.Report, bench bool, wallSeconds float64) error {
	art := chaos.AutoscaleArtifact{}
	if bench {
		art.WallSeconds = wallSeconds
	}
	for _, rep := range reports {
		if sum, ok := chaos.AutoscaleSummaryOf(rep); ok {
			art.Scenarios = append(art.Scenarios, sum)
		}
	}
	if len(art.Scenarios) == 0 {
		return fmt.Errorf("no elastic scenarios ran; nothing to write to %s", path)
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
