// Command abacus-gateway serves co-located DNN services over HTTP: the
// Abacus runtime paced against the wall clock, with predictor-driven
// admission control, /statz JSON counters, and Prometheus /metrics.
// SIGINT/SIGTERM drain gracefully: in-flight queries are answered before
// the listener closes.
//
// Usage:
//
//	abacus-gateway -addr 127.0.0.1:8080 -models Res152,IncepV3
//	abacus-gateway -models Res101,Res152,VGG19,Bert -speedup 10 -queue-cap 32
//	abacus-gateway -models Res152,IncepV3 -nodes 4       # replicated cluster
//	abacus-gateway -models Res152,IncepV3 -autoscale -max-nodes 4   # elastic fleet
//	abacus-gateway -models Res50,Res152,IncepV3 -placement 'Res50,Res152;IncepV3'
//	abacus-gateway -spec examples/workloads/flash-crowd.json   # preflight a workload
//	abacus-gateway -trace session.trace                  # capture arrivals to tracev2
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"abacus"
	"abacus/internal/cli"
	"abacus/internal/trace"
	"abacus/internal/workload"
)

var fail = cli.Failer("abacus-gateway")

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	modelsFlag := flag.String("models", "Res152,IncepV3", "comma-separated co-located models")
	nodesFlag := flag.Int("nodes", 1, "per-GPU serving nodes behind the gateway; models are sharded by the overlap-gain grouping unless -placement pins them")
	placementFlag := flag.String("placement", "", "pin the per-node placement: semicolon-separated nodes of comma-separated models (e.g. 'Res152,IncepV3;Res50'); overrides -nodes")
	speedup := flag.Float64("speedup", 1, "virtual ms per wall ms (1 = real time)")
	queueCap := flag.Int("queue-cap", 64, "admitted-but-unfinished queries per service before shedding")
	qosFactor := flag.Float64("qos-factor", 2, "QoS target as a multiple of max-input solo latency")
	predictorFile := flag.String("predictor", "", "trained predictor JSON (see abacus-train -model-out; default: exact oracle)")
	calibrate := flag.Bool("calibrate", false, "enable online latency-model calibration (per-service feedback-corrected predictions on /statz)")
	predictCache := flag.Int("predict-cache", 4096, "group-signature prediction cache capacity (0 disables)")
	calibSeed := flag.Int64("calib-seed", 1, "seed for the calibration feedback reservoirs")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain bound on shutdown")
	autoscaleFlag := flag.Bool("autoscale", false, "elastic fleet: a control loop adds and drains replicated nodes between -min-nodes and -max-nodes as offered load moves (incompatible with -nodes > 1 and -placement)")
	minNodes := flag.Int("min-nodes", 1, "autoscale floor: nodes the fleet never shrinks below")
	maxNodes := flag.Int("max-nodes", 8, "autoscale ceiling: nodes the fleet never grows beyond")
	warmupMS := flag.Float64("warmup-ms", 1500, "autoscale warm-up window: a new node takes only the probe trickle for this long, virtual ms")
	capacityQPS := flag.Float64("capacity-qps", 30, "autoscale sizing: sustainable per-node load, virtual QPS")
	scaleIntervalMS := flag.Float64("scale-interval-ms", 1000, "autoscale control-loop observation interval, virtual ms")
	specFile := flag.String("spec", "", "preflight a workload spec (JSON or YAML) against this deployment and print its offered-load digest before serving")
	traceOut := flag.String("trace", "", "capture every admitted-path arrival and write it as a tracev2 file on drain")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}

	models, err := cli.ParseModels(*modelsFlag)
	if err != nil {
		fail(err)
	}
	placement, err := cli.ParsePlacement(*placementFlag)
	if err != nil {
		fail(err)
	}
	cfg := abacus.GatewayConfig{
		Models:       models,
		Nodes:        *nodesFlag,
		Placement:    placement,
		QoSFactor:    *qosFactor,
		Speedup:      *speedup,
		QueueCap:     *queueCap,
		DrainTimeout: *drainTimeout,
		PredictCache: *predictCache,
	}
	if *predictCache <= 0 {
		cfg.PredictCache = -1 // flag 0 = off; Config 0 = default
	}
	if *autoscaleFlag {
		// Nodes stays as flagged: the gateway itself rejects anything but the
		// default (1) or exactly -min-nodes.
		cfg.Autoscale = &abacus.AutoscaleConfig{
			MinNodes:    *minNodes,
			MaxNodes:    *maxNodes,
			CapacityQPS: *capacityQPS,
			WarmupMS:    *warmupMS,
			IntervalMS:  *scaleIntervalMS,
		}
	}
	if *predictorFile != "" {
		f, err := os.Open(*predictorFile)
		if err != nil {
			fail(err)
		}
		p, err := abacus.LoadPredictor(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		cfg.Model = p
	}
	if *calibrate {
		cfg.Calib = &abacus.CalibrationConfig{Seed: *calibSeed}
	}
	specName := ""
	if *specFile != "" {
		// Preflight: the spec must bind against exactly this deployment, so a
		// loadgen pointed at us with the same spec is guaranteed to validate.
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fail(err)
		}
		spec, err := workload.Parse(data)
		if err != nil {
			fail(err)
		}
		c, err := spec.Bind(models, 1)
		if err != nil {
			fail(fmt.Errorf("%s does not bind against this deployment: %w", *specFile, err))
		}
		specName = c.Spec.Name
		fmt.Printf("workload %q preflight ok:\n", c.Spec.Name)
		for _, s := range c.Summary() {
			fmt.Printf("  svc %d %s: mean %.4g qps, peak %.4g qps\n", s.Service, s.Model, s.MeanQPS, s.PeakQPS)
		}
	}
	var capture *trace.Capture
	if *traceOut != "" {
		capture = trace.NewCapture()
		cfg.Capture = capture
	}

	gw, err := abacus.NewGateway(cfg)
	if err != nil {
		fail(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	calNote := ""
	if *calibrate {
		calNote = ", calibrating"
	}
	nodeNote := ""
	if gw.NumNodes() > 1 {
		nodeNote = fmt.Sprintf(", %d nodes", gw.NumNodes())
	}
	if *autoscaleFlag {
		nodeNote = fmt.Sprintf(", autoscaling %d..%d nodes", *minNodes, *maxNodes)
	}
	fmt.Printf("abacus-gateway serving %v on http://%s (speedup %g, queue cap %d%s%s)\n",
		models, ln.Addr(), *speedup, *queueCap, nodeNote, calNote)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	served := make(chan error, 1)
	go func() { served <- gw.ServeListener(ln) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "abacus-gateway: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
		defer cancel()
		if err := gw.Shutdown(ctx); err != nil {
			fail(err)
		}
		<-served
		fmt.Fprintln(os.Stderr, "abacus-gateway: drained")
	case err := <-served:
		if err != nil {
			fail(err)
		}
	}

	if capture != nil {
		if err := writeCapture(*traceOut, specName, len(models), capture); err != nil {
			fail(err)
		}
	}
}

// writeCapture persists the session's recorded arrivals as a tracev2 file;
// replaying it through abacus-loadgen -trace re-offers the exact load this
// gateway saw, on the same virtual timestamps.
func writeCapture(path, name string, services int, capture *trace.Capture) error {
	if name == "" {
		name = "gateway-capture"
	}
	arrivals := capture.Snapshot()
	meta := workload.CaptureMeta(name, services, arrivals)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.WriteTrace(f, meta, arrivals); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "abacus-gateway: wrote %d captured arrivals to %s\n", len(arrivals), path)
	return nil
}
