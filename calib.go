package abacus

import (
	"net/http"

	"abacus/internal/calib"
	"abacus/internal/server"
)

// Online latency-model calibration (see internal/calib): every completed
// query feeds a per-service feedback tracker, and an affine correction fit
// online maps raw predictions onto observed latencies. The facade re-exports
// the tracker and its wrapper so embedders can close the loop around any
// LatencyModel without importing internal packages:
//
//	tr := abacus.NewCalibrationTracker(abacus.CalibrationConfig{Seed: 1},
//		[]abacus.Model{abacus.ResNet152, abacus.InceptionV3})
//	model := abacus.NewCalibratedModel(inner, tr)
//	// ... predict through model, feed completions back:
//	tr.ObserveAdmission(svc, soloMS, backlogMS, observedMS)
//
// The gateway enables the same loop internally via GatewayConfig.Calib.
type (
	// CalibrationConfig tunes the online calibration tracker; the zero value
	// takes the defaults (256-sample reservoirs, damped affine updates).
	CalibrationConfig = calib.Config
	// CalibrationTracker accumulates per-service feedback and fits the
	// affine corrections.
	CalibrationTracker = calib.Tracker
	// CalibratedModel is a LatencyModel whose predictions pass through a
	// tracker's per-service corrections.
	CalibratedModel = calib.Calibrated
	// CalibrationStatus is the tracker state exposed on /statz.
	CalibrationStatus = calib.Status
	// LossyTransport is an http.RoundTripper that drops inference traffic
	// with a seeded probability — the load generator's fault path for
	// exercising the retry and idempotency layers.
	LossyTransport = server.LossyTransport
)

// NewCalibrationTracker builds a tracker for the given co-located services.
// It panics on an invalid configuration, mirroring the internal constructor.
func NewCalibrationTracker(cfg CalibrationConfig, models []Model) *CalibrationTracker {
	return calib.NewTracker(cfg, models)
}

// NewCalibratedModel wraps inner so every prediction passes through the
// tracker's current per-service corrections.
func NewCalibratedModel(inner LatencyModel, tr *CalibrationTracker) *CalibratedModel {
	return calib.NewCalibrated(inner, tr)
}

// NewLossyTransport wraps inner (nil = http.DefaultTransport) with a seeded
// drop probability in [0, 1] applied to /v1/infer traffic only.
func NewLossyTransport(inner http.RoundTripper, dropProb float64, seed int64) *LossyTransport {
	return server.NewLossyTransport(inner, dropProb, seed)
}
