package abacus

import (
	"abacus/internal/admit"
	"abacus/internal/chaos"
	"abacus/internal/server"
)

// Fault injection and graceful degradation (see internal/chaos and
// internal/admit). The facade re-exports the deterministic scenario runner
// and the client retry policy so embedders can chaos-test a deployment and
// configure recovery without importing internal packages:
//
//	rep, _ := abacus.RunChaos(abacus.ChaosScenario{
//		Name: "throttle",
//		Script: abacus.FaultScript{Windows: []abacus.FaultWindow{
//			{Kind: "gpu_throttle", Start: 2000, End: 6000, Magnitude: 0.5},
//		}},
//	})
//	fmt.Print(rep.Text())
type (
	// ChaosScenario is one replayable fault-injection experiment.
	ChaosScenario = chaos.Scenario
	// ChaosReport is a scenario's deterministic outcome.
	ChaosReport = chaos.Report
	// FaultScript is an ordered set of fault windows.
	FaultScript = chaos.Script
	// FaultWindow is one fault active over a virtual-time interval.
	FaultWindow = chaos.Window
	// DegradeConfig tunes the gateway's degraded-mode controller.
	DegradeConfig = admit.DegradeConfig
	// RetryPolicy shapes the Go client's wall-clock retry behavior.
	RetryPolicy = server.RetryPolicy
	// Retrier executes gateway requests under a RetryPolicy.
	Retrier = server.Retrier
)

// RunChaos executes one chaos scenario to completion in virtual time.
func RunChaos(sc ChaosScenario) (*ChaosReport, error) { return chaos.Run(sc) }

// ChaosScenarios returns the named built-in scenario suite.
func ChaosScenarios() []ChaosScenario { return chaos.Scenarios() }

// ParseFaultScript reads a fault script from JSON or CSV bytes.
func ParseFaultScript(data []byte) (FaultScript, error) { return chaos.ParseScript(data) }

// NewRetrier builds a retrying client wrapper; zero policy fields take
// sensible defaults (3 attempts, 50ms base backoff, seeded jitter).
func NewRetrier(policy RetryPolicy) *Retrier { return server.NewRetrier(policy) }
